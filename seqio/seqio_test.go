package seqio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect drains a Records iterator into a slice, failing the test on a
// parse error.
func collect(t *testing.T, r *Reader) []Record {
	t.Helper()
	var out []Record
	for rec, err := range r.Records() {
		if err != nil {
			t.Fatalf("unexpected parse error: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

func TestFASTABasic(t *testing.T) {
	in := ">chr1 synthetic test\nACGTACGT\nACGT\n>chr2\nTTTT\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FASTA {
		t.Fatalf("format = %v, want FASTA", r.Format())
	}
	recs := collect(t, r)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Desc != "synthetic test" {
		t.Errorf("header = %q/%q", recs[0].Name, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Errorf("seq = %q (multi-line concatenation)", recs[0].Seq)
	}
	if recs[1].Name != "chr2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 2 = %+v", recs[1])
	}
}

func TestFASTATolerance(t *testing.T) {
	// CRLF endings, lowercase bases, blank lines between records and a
	// trailing blank line.
	in := "\r\n>r1\r\nacgt\r\nACgt\r\n\r\n>r2\r\ntttt\r\n\r\n\r\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, r)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("seq = %q, want uppercased ACGTACGT", recs[0].Seq)
	}
	if string(recs[1].Seq) != "TTTT" {
		t.Errorf("seq = %q", recs[1].Seq)
	}
}

func TestFASTAEmptyRecordAndFile(t *testing.T) {
	r, err := NewReader(strings.NewReader(">empty\n\n>x\nAC\nGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, r)
	if len(recs) != 2 || len(recs[0].Seq) != 0 || string(recs[1].Seq) != "ACGT" {
		t.Fatalf("got %+v", recs)
	}

	// Empty and whitespace-only inputs are zero records, not errors.
	for _, in := range []string{"", "\n\n  \n"} {
		r, err := NewReader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("NewReader(%q): %v", in, err)
		}
		if recs := collect(t, r); len(recs) != 0 {
			t.Fatalf("records(%q) = %d, want 0", in, len(recs))
		}
	}
}

// expectParseError asserts that parsing yields an error containing every
// wanted substring (typically a line number).
func expectParseError(t *testing.T, in string, wants ...string) {
	t.Helper()
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var got error
	for _, err := range r.Records() {
		if err != nil {
			got = err
			break
		}
	}
	if got == nil {
		t.Fatalf("parse of %q: want error, got none", in)
	}
	for _, w := range wants {
		if !strings.Contains(got.Error(), w) {
			t.Errorf("error %q does not mention %q", got, w)
		}
	}
}

func TestFASTAStrayHeaderMarkers(t *testing.T) {
	// A '>' mid-sequence-line is a truncated/concatenated record, not
	// sequence data; same for '@'. Both carry the offending line number.
	expectParseError(t, ">r1\nACGT>r2\nACGT\n", "line 2", "stray", "'>'")
	expectParseError(t, ">r1\nACGT\nAC@GT\n", "line 3", "stray", "'@'")
	// Sequence data before any header (via the dedicated FASTA reader:
	// the autodetecting front door rejects this input at sniff time).
	fr, err := NewFASTAReader(strings.NewReader("ACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	var got error
	for _, err := range fr.Records() {
		got = err
		break
	}
	if got == nil || !strings.Contains(got.Error(), "line 1") || !strings.Contains(got.Error(), "before first FASTA header") {
		t.Errorf("data-before-header error = %v", got)
	}
	// Interior whitespace and digits are invalid characters.
	expectParseError(t, ">r1\nAC GT\n", "line 2", "invalid character")
	expectParseError(t, ">r1\nACGT7\n", "line 2", "invalid character")
}

func TestFASTQBasic(t *testing.T) {
	in := "@r1 desc here\nACGT\n+\nIIII\n@r2\nacgttt\n+r2\nIIIIII\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FASTQ {
		t.Fatalf("format = %v, want FASTQ", r.Format())
	}
	recs := collect(t, r)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Name != "r1" || recs[0].Desc != "desc here" {
		t.Errorf("header = %q/%q", recs[0].Name, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("record 1 = %+v", recs[0])
	}
	if string(recs[1].Seq) != "ACGTTT" {
		t.Errorf("seq = %q, want uppercased", recs[1].Seq)
	}
}

func TestFASTQMultiLineAndQualityAt(t *testing.T) {
	// Multi-line sequence and quality; the quality line legitimately
	// starts with '@' (Phred 31) and must not be mistaken for a header.
	in := "@r1\nACGT\nACGT\n+\n@III\nIII@\n@r2\nTT\n+\nII\n"
	r, err := NewFASTQReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for rec, err := range r.Records() {
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if string(recs[0].Seq) != "ACGTACGT" || string(recs[0].Qual) != "@IIIIII@" {
		t.Errorf("record 1 = %+v", recs[0])
	}
}

func TestFASTQErrors(t *testing.T) {
	// Truncated before separator, truncated quality, overlong quality,
	// stray '>' in sequence.
	expectParseError(t, "@r1\nACGT\n", "truncated", "'+'")
	expectParseError(t, "@r1\nACGT\n+\nII\n", "truncated", "quality")
	expectParseError(t, "@r1\nACGT\n+\nIIIIII\n", "quality length 6", "sequence length 4")
	expectParseError(t, "@r1\nAC>T\n+\nIIII\n", "line 2", "stray")
	expectParseError(t, "@r1\nACGT\n+\nII\x07I\n", "invalid quality")
}

func TestSniffUnrecognized(t *testing.T) {
	if _, err := NewReader(strings.NewReader("xACGT\n")); err == nil {
		t.Fatal("want format error for non-FASTA/FASTQ input")
	}
}

func TestGzipAutodetect(t *testing.T) {
	var plain bytes.Buffer
	if err := WriteFASTQ(&plain, []Record{
		{Name: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "r2", Desc: "second", Seq: []byte("TTTT"), Qual: []byte("!!!!")},
	}); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(plain.Bytes())
	zw.Close()

	for name, data := range map[string][]byte{"plain": plain.Bytes(), "gzip": gz.Bytes()} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Format() != FASTQ {
			t.Fatalf("%s: format = %v", name, r.Format())
		}
		recs := collect(t, r)
		if len(recs) != 2 || string(recs[0].Seq) != "ACGTACGT" || string(recs[1].Qual) != "!!!!" {
			t.Fatalf("%s: got %+v", name, recs)
		}
	}
}

func TestOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fasta.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(">r1\nACGT\n"))
	zw.Close()
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := collect(t, f.Reader)
	if len(recs) != 1 || recs[0].Name != "r1" || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("got %+v", recs)
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestReadAll(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">a\nAC\n>b\nGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "a" || recs[1].Name != "b" {
		t.Fatalf("got %+v", recs)
	}
	if _, err := ReadAll(strings.NewReader(">a\nAC>GT\n")); err == nil {
		t.Fatal("want stray-marker error")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	want := []Record{
		{Name: "chr1", Desc: "synthetic", Seq: []byte(strings.Repeat("ACGT", 50))},
		{Name: "chr2", Seq: []byte("GATTACA")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d", len(got))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Desc != want[i].Desc || !bytes.Equal(got[i].Seq, want[i].Seq) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFASTQWriterNilQual(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, []Record{{Name: "r", Seq: []byte("ACGT")}}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Qual) != "IIII" {
		t.Fatalf("got %+v", recs)
	}
}

func TestStreamingIsIncremental(t *testing.T) {
	// The reader must not slurp: after pulling the first record from a
	// two-record stream, stopping iteration must leave the source
	// partially consumed (bounded by the scanner's buffer), proving
	// records are parsed on demand.
	var b strings.Builder
	b.WriteString(">r0\nACGT\n>r1\n")
	long := strings.Repeat("ACGTACGTAC", 20)
	for range 1000 {
		b.WriteString(long + "\n")
	}
	src := strings.NewReader(b.String())
	r, err := NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	for rec, err := range r.Records() {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Name != "r0" {
			t.Fatalf("first record = %q", rec.Name)
		}
		break
	}
	if src.Len() == 0 {
		t.Fatal("source fully consumed after first record: reader slurps")
	}
}
