package genasm

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"genasm/internal/seq"
	"genasm/internal/simulate"
)

// alignTraceRecorder is a concurrency-safe AlignTrace sink for tests.
type alignTraceRecorder struct {
	mu       sync.Mutex
	acquires int
	waits    time.Duration
	done     int
	errs     int
	alignDur time.Duration
	textLen  int
	queryLen int
}

func (r *alignTraceRecorder) trace() *AlignTrace {
	return &AlignTrace{
		WorkspaceAcquired: func(wait time.Duration) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.acquires++
			r.waits += wait
		},
		Done: func(textLen, queryLen int, d time.Duration, err error) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.done++
			if err != nil {
				r.errs++
			}
			r.alignDur += d
			r.textLen += textLen
			r.queryLen += queryLen
		},
	}
}

// TestAlignTraceCoversAllPaths pins that one AlignTrace attached with
// WithAlignTrace observes Align, AlignGlobal, EditDistance and AlignBatch
// traffic (they all funnel through runEncoded), including failures.
func TestAlignTraceCoversAllPaths(t *testing.T) {
	rec := &alignTraceRecorder{}
	e, err := NewEngine(WithAlignTrace(rec.trace()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	text := []byte("ACGTACGTACGTACGTACGT")
	query := []byte("ACGTACGTACGAACGTACGT")

	if _, err := e.Align(ctx, text, query); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AlignGlobal(ctx, text, query); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EditDistance(ctx, text, query); err != nil {
		t.Fatal(err)
	}
	jobs := []BatchJob{{Text: text, Query: query}, {Text: text, Query: text}}
	results, err := e.AlignBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// An encode failure never reaches the pool, so the trace must not fire.
	var alphaErr *AlphabetError
	if _, err := e.Align(ctx, []byte("NOPE!"), query); !errors.As(err, &alphaErr) {
		t.Fatalf("err = %v, want AlphabetError", err)
	}
	// A kernel failure (empty query) surfaces through Done with its error.
	if _, err := e.Align(ctx, text, nil); err == nil {
		t.Fatal("expected empty-query error")
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	const wantOK = 5 // Align + AlignGlobal + EditDistance + 2 batch items
	if rec.acquires != wantOK+1 {
		t.Errorf("WorkspaceAcquired ran %d times, want %d", rec.acquires, wantOK+1)
	}
	if rec.done != wantOK+1 || rec.errs != 1 {
		t.Errorf("Done ran %d times (%d errors), want %d (1 error)", rec.done, rec.errs, wantOK+1)
	}
	if rec.alignDur <= 0 || rec.waits < 0 {
		t.Errorf("durations not recorded: align=%v wait=%v", rec.alignDur, rec.waits)
	}
	if rec.textLen == 0 || rec.queryLen == 0 {
		t.Error("Done never saw input sizes")
	}
}

// TestSetAlignTraceDetach pins runtime attach/detach via SetAlignTrace.
func TestSetAlignTraceDetach(t *testing.T) {
	rec := &alignTraceRecorder{}
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.Align(ctx, []byte("ACGT"), []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	e.SetAlignTrace(rec.trace())
	if _, err := e.Align(ctx, []byte("ACGT"), []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	e.SetAlignTrace(nil)
	if _, err := e.Align(ctx, []byte("ACGT"), []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	if rec.done != 1 {
		t.Errorf("Done ran %d times, want 1 (only while attached)", rec.done)
	}
}

// mapTraceRecorder is a concurrency-safe MapTrace sink for tests.
type mapTraceRecorder struct {
	mu         sync.Mutex
	seedCalls  int
	seeds      int
	candidates int
	filterOK   int
	filterNo   int
	alignOK    int
	reads      int
	mapped     int
	sumCand    int
	sumFilt    int
	sumAcc     int
	readDur    time.Duration
}

func (r *mapTraceRecorder) trace() *MapTrace {
	return &MapTrace{
		SeedingDone: func(seeds, candidates int, d time.Duration) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.seedCalls++
			r.seeds += seeds
			r.candidates += candidates
		},
		FilterDone: func(accepted bool, d time.Duration) {
			r.mu.Lock()
			defer r.mu.Unlock()
			if accepted {
				r.filterOK++
			} else {
				r.filterNo++
			}
		},
		AlignDone: func(ok bool, d time.Duration) {
			r.mu.Lock()
			defer r.mu.Unlock()
			if ok {
				r.alignOK++
			}
		},
		ReadDone: func(candidates, filtered, accepted int, mapped bool, d time.Duration) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.reads++
			if mapped {
				r.mapped++
			}
			r.sumCand += candidates
			r.sumFilt += filtered
			r.sumAcc += accepted
			r.readDur += d
		},
	}
}

// TestMapTracePublicAPI pins the MapperConfig.Trace wiring: hooks fire
// through the concurrent MapReads path and the unpacked ReadDone counters
// agree with the per-read counters the public ReadMapping reports.
func TestMapTracePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 7))
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(80000))
	simReads, err := simulate.Reads(rng, genome, 16, simulate.Illumina100, false)
	if err != nil {
		t.Fatal(err)
	}
	reads := make([]Read, len(simReads))
	for i, r := range simReads {
		reads[i] = Read{Name: "r", Seq: alphabetDecode(r.Seq)}
	}

	e, err := NewEngine(WithSearchStart(true))
	if err != nil {
		t.Fatal(err)
	}
	rec := &mapTraceRecorder{}
	m, err := e.NewMapper(alphabetDecode(genome), MapperConfig{ErrorRate: 0.05, Prefilter: true, Trace: rec.trace()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.MapReads(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}

	var wantCand, wantFilt, wantAcc, wantMapped int
	for _, mp := range got {
		wantCand += mp.Candidates
		wantFilt += mp.Filtered
		wantAcc += mp.Aligned
		if mp.Mapped {
			wantMapped++
		}
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.reads != len(reads) {
		t.Fatalf("ReadDone ran %d times, want %d", rec.reads, len(reads))
	}
	if rec.mapped != wantMapped {
		t.Errorf("trace saw %d mapped reads, results say %d", rec.mapped, wantMapped)
	}
	if rec.sumCand != wantCand || rec.sumFilt != wantFilt || rec.sumAcc != wantAcc {
		t.Errorf("ReadDone counters (cand=%d filt=%d acc=%d) disagree with results (%d %d %d)",
			rec.sumCand, rec.sumFilt, rec.sumAcc, wantCand, wantFilt, wantAcc)
	}
	if rec.filterOK+rec.filterNo != wantCand {
		t.Errorf("filter hook ran %d times, want one per considered candidate (%d)",
			rec.filterOK+rec.filterNo, wantCand)
	}
	if rec.alignOK < wantMapped {
		t.Errorf("align hook saw %d successes, below %d mapped reads", rec.alignOK, wantMapped)
	}
	if rec.seedCalls < len(reads) {
		t.Errorf("seeding hook ran %d times for %d reads", rec.seedCalls, len(reads))
	}
	if rec.candidates < wantCand {
		t.Errorf("seeding generated %d candidates, below %d considered", rec.candidates, wantCand)
	}
	if rec.readDur <= 0 {
		t.Error("read durations not recorded")
	}
}
