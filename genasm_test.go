package genasm

import (
	"strings"
	"testing"
)

func TestAlignerPaperExample(t *testing.T) {
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := al.AlignGlobal([]byte("CGTGA"), []byte("CTGA"))
	if err != nil {
		t.Fatal(err)
	}
	if aln.CIGAR != "1=1D3=" {
		t.Errorf("CIGAR = %s, want 1=1D3=", aln.CIGAR)
	}
	if aln.ClassicCIGAR != "1M1D3M" {
		t.Errorf("ClassicCIGAR = %s", aln.ClassicCIGAR)
	}
	if aln.Distance != 1 || aln.Matches != 4 {
		t.Errorf("distance %d matches %d", aln.Distance, aln.Matches)
	}
}

func TestAlignSemiGlobal(t *testing.T) {
	al, err := NewAligner(Config{SearchStart: true})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := al.Align([]byte("TTTTACGTACGTTTTT"), []byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if aln.Distance != 0 {
		t.Fatalf("distance %d, want 0", aln.Distance)
	}
	if aln.TextStart != 4 || aln.TextEnd != 12 {
		t.Fatalf("window [%d,%d), want [4,12)", aln.TextStart, aln.TextEnd)
	}
}

func TestEditDistanceConvenience(t *testing.T) {
	d, err := EditDistance([]byte("GATTACA"), []byte("GATTACA"))
	if err != nil || d != 0 {
		t.Fatalf("d=%d err=%v", d, err)
	}
	d, err = EditDistance([]byte("ACGTACGTAC"), []byte("ACGAACGTAC"))
	if err != nil || d != 1 {
		t.Fatalf("d=%d err=%v", d, err)
	}
}

func TestInvalidLetters(t *testing.T) {
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Align([]byte("ACGT"), []byte("ACNG")); err == nil {
		t.Fatal("N should be rejected by the DNA alphabet")
	}
	if _, err := al.Align([]byte("ACNT"), []byte("ACGG")); err == nil {
		t.Fatal("N in text should be rejected")
	}
}

func TestScoring(t *testing.T) {
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := al.AlignGlobal([]byte("ACGTACGTAC"), []byte("ACGTACGTAC"))
	if err != nil {
		t.Fatal(err)
	}
	if got := aln.Score(ScoringBWAMEM); got != 10 {
		t.Errorf("BWA-MEM score = %d, want 10", got)
	}
	if got := aln.Score(ScoringMinimap2); got != 20 {
		t.Errorf("Minimap2 score = %d, want 20", got)
	}
}

func TestProteinAlphabet(t *testing.T) {
	al, err := NewAligner(Config{Alphabet: Protein})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := al.AlignGlobal([]byte("MKTAYIAKQR"), []byte("MKTAYIAKQR"))
	if err != nil {
		t.Fatal(err)
	}
	if aln.Distance != 0 {
		t.Fatalf("distance %d", aln.Distance)
	}
	if Protein.String() != "Protein" {
		t.Errorf("alphabet name %s", Protein)
	}
}

func TestGenericTextSearch(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog")
	matches, err := Search(Bytes, text, []byte("qu1ck"), 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.Pos == strings.Index(string(text), "quick") && m.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("did not find 'qu1ck' within 1 edit: %v", matches)
	}
	// Ascending order.
	for i := 1; i < len(matches); i++ {
		if matches[i].Pos < matches[i-1].Pos {
			t.Fatal("matches not in ascending position order")
		}
	}
}

func TestDNASearch(t *testing.T) {
	matches, err := Search(DNA, []byte("ACGTACGTACGT"), []byte("TACG"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].Pos != 3 || matches[1].Pos != 7 {
		t.Fatalf("matches = %v", matches)
	}
}

func TestFilterAPI(t *testing.T) {
	region := []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")
	read := []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")
	ok, err := Filter(region, read, 2)
	if err != nil || !ok {
		t.Fatalf("identical pair rejected: ok=%v err=%v", ok, err)
	}
	bad := []byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT")
	ok, err = Filter(region, bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dissimilar pair accepted")
	}
}

func TestAcceleratorModel(t *testing.T) {
	acc, err := NewAccelerator(AcceleratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.AreaMM2(); got < 10 || got > 11 {
		t.Errorf("area %.2f, want ~10.69", got)
	}
	if got := acc.PowerW(); got < 3 || got > 3.5 {
		t.Errorf("power %.2f, want ~3.23", got)
	}
	long := acc.AlignmentsPerSecond(10000, 0.15)
	if long < 5e5 || long > 1e6 {
		t.Errorf("long-read throughput %.0f/s out of expected band", long)
	}
	short := acc.AlignmentsPerSecond(100, 0.05)
	if short <= long {
		t.Error("short reads must be faster than long reads")
	}
	if acc.AlignmentLatency(10000, 0.15) <= 0 {
		t.Error("latency must be positive")
	}
	// Vault scaling.
	half, err := NewAccelerator(AcceleratorConfig{Vaults: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r := long / half.AlignmentsPerSecond(10000, 0.15); r < 1.99 || r > 2.01 {
		t.Errorf("vault scaling ratio %.2f, want 2.0", r)
	}
}

func TestAcceleratorRejectsBadConfig(t *testing.T) {
	if _, err := NewAccelerator(AcceleratorConfig{FreqHz: -1}); err == nil {
		t.Fatal("negative frequency should fail")
	}
}

func TestGapsBeforeSubstitutionsConfig(t *testing.T) {
	al, err := NewAligner(Config{GapsBeforeSubstitutions: true})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := al.AlignGlobal([]byte("ACGTACGT"), []byte("ACGTACGT"))
	if err != nil || aln.Distance != 0 {
		t.Fatalf("aln=%+v err=%v", aln, err)
	}
}
