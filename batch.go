package genasm

import (
	"context"
	"sync"
	"sync/atomic"
)

// BatchJob is one alignment task for AlignBatch: Query against Text, both
// as letters of the engine's alphabet.
type BatchJob struct {
	Text, Query []byte
	// Global selects end-to-end alignment.
	Global bool
}

// BatchResult pairs one job's Alignment with its error. Per-job failures —
// including letters outside the engine's alphabet, reported as an
// *AlphabetError — land here, so one bad job never poisons the rest of a
// batch.
type BatchResult struct {
	Alignment Alignment
	Err       error
}

// AlignBatch aligns many pairs concurrently, streaming jobs through the
// engine's workspace pool — the software mirror of the accelerator's
// one-GenASM-per-vault parallelism, whose throughput scales linearly with
// the number of units (Section 10.5). Concurrency is bounded by the
// engine's capacity and shared fairly with other traffic on the engine.
//
// Results are in job order, with per-job errors in BatchResult.Err. The
// returned error is non-nil only when ctx ends before the batch drains;
// jobs not yet run then carry ctx's error in their BatchResult.
func (e *Engine) AlignBatch(ctx context.Context, jobs []BatchJob) ([]BatchResult, error) {
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	workers := min(len(jobs), e.Capacity())
	var next atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				results[i] = e.alignJob(ctx, jobs[i])
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// alignJob runs one batch job through the shared alignment dispatch,
// folding every failure into the result.
func (e *Engine) alignJob(ctx context.Context, job BatchJob) BatchResult {
	if err := ctx.Err(); err != nil {
		return BatchResult{Err: err}
	}
	encText, err := e.encode("text", job.Text)
	if err != nil {
		return BatchResult{Err: err}
	}
	encQuery, err := e.encode("query", job.Query)
	if err != nil {
		return BatchResult{Err: err}
	}
	aln, err := e.runEncoded(ctx, encText, encQuery, job.Global)
	return BatchResult{Alignment: aln, Err: err}
}

// AlignBatch aligns many pairs in parallel with a transient engine sized to
// workers (workers <= 0 uses the default sizing). Results are in job order;
// per-job failures, including encode failures, are reported in
// BatchResult.Err rather than aborting the batch.
//
// Deprecated: use Engine.AlignBatch, which is context-aware and draws from
// a long-lived engine's workspace pool instead of building workspaces per
// call.
func AlignBatch(cfg Config, jobs []BatchJob, workers int) ([]BatchResult, error) {
	e, err := newEngine(cfg, 0, workers)
	if err != nil {
		return nil, err
	}
	return e.AlignBatch(context.Background(), jobs)
}
