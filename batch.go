package genasm

import (
	"fmt"

	"genasm/internal/core"
)

// BatchJob is one alignment task for AlignBatch: Query against Text, both
// as letters of the aligner's alphabet.
type BatchJob struct {
	Text, Query []byte
	// Global selects end-to-end alignment.
	Global bool
}

// BatchResult pairs one job's Alignment with its error.
type BatchResult struct {
	Alignment Alignment
	Err       error
}

// AlignBatch aligns many pairs in parallel with one workspace per worker —
// the software mirror of the accelerator's one-GenASM-per-vault
// parallelism, whose throughput scales linearly with the number of units
// (Section 10.5). workers <= 0 uses all CPUs. Results are in job order.
func AlignBatch(cfg Config, jobs []BatchJob, workers int) ([]BatchResult, error) {
	a := cfg.Alphabet.impl()
	coreJobs := make([]core.BatchJob, len(jobs))
	for i, j := range jobs {
		text, err := a.Encode(j.Text)
		if err != nil {
			return nil, fmt.Errorf("genasm: job %d text: %w", i, err)
		}
		query, err := a.Encode(j.Query)
		if err != nil {
			return nil, fmt.Errorf("genasm: job %d query: %w", i, err)
		}
		coreJobs[i] = core.BatchJob{Text: text, Pattern: query, Global: j.Global}
	}
	raw := core.AlignBatch(cfg.coreConfig(), coreJobs, workers)
	out := make([]BatchResult, len(raw))
	for i, r := range raw {
		if r.Err != nil {
			out[i].Err = r.Err
			continue
		}
		out[i].Alignment = alignmentFromCore(r.Alignment)
	}
	return out, nil
}
