package genasm

import (
	"context"
	"iter"
	"slices"
)

// BatchJob is one alignment task for AlignStream/AlignBatch: Query against
// Text, both as letters of the engine's alphabet.
type BatchJob struct {
	Text, Query []byte
	// Global selects end-to-end alignment.
	Global bool
}

// BatchResult pairs one job's Alignment with its error. Per-job failures —
// including letters outside the engine's alphabet, reported as an
// *AlphabetError — land here, so one bad job never poisons the rest of a
// batch or stream.
type BatchResult struct {
	// Index is the 0-based position of the job in the input stream or
	// slice — how Unordered stream consumers reassociate results with
	// jobs.
	Index     int
	Alignment Alignment
	Err       error
}

// AlignStream aligns a stream of jobs concurrently and yields a stream of
// results — the bounded-memory core every batch path runs on, and the
// software mirror of the accelerator streaming reads through its fixed
// count of per-vault GenASM units (Section 10.5). Jobs are pulled from the
// iterator on demand and fanned out over at most Engine.Capacity worker
// goroutines (spawned lazily, so small streams start few goroutines);
// regardless of stream length, only ~2×Capacity jobs are in flight or
// buffered at any moment.
//
// By default results come back in input order with per-job errors in
// BatchResult.Err. With the Unordered option, results are yielded as they
// complete — maximum throughput, with BatchResult.Index identifying each
// job.
//
// When ctx ends, jobs that have not started carry ctx.Err() in their
// BatchResult and the stream drains promptly. Stopping iteration early
// stops dispatch; jobs already picked up by workers finish in the
// background (cancel ctx to cut them short). The returned iterator is
// single-use.
func (e *Engine) AlignStream(ctx context.Context, jobs iter.Seq[BatchJob], opts ...StreamOption) iter.Seq[BatchResult] {
	var s streamSettings
	for _, o := range opts {
		o(&s)
	}
	return fanOut(e.Capacity(), !s.unordered, jobs, func(idx int, job BatchJob) BatchResult {
		res := e.alignJob(ctx, job)
		res.Index = idx
		return res
	})
}

// AlignBatch aligns a slice of jobs concurrently through the engine's
// workspace pool. It is a thin wrapper over AlignStream — the slice is
// streamed, results land back at their job's index — so both APIs share
// one concurrency path and produce identical results.
//
// Results are in job order, with per-job errors in BatchResult.Err. The
// returned error is non-nil only when ctx ends before the batch drains;
// jobs not yet run then carry ctx's error in their BatchResult.
func (e *Engine) AlignBatch(ctx context.Context, jobs []BatchJob) ([]BatchResult, error) {
	results := make([]BatchResult, len(jobs))
	for res := range e.AlignStream(ctx, slices.Values(jobs), Unordered()) {
		results[res.Index] = res
	}
	return results, ctx.Err()
}

// alignJob runs one batch job through the shared alignment dispatch,
// folding every failure — including a context that ended before the job
// started — into the result.
func (e *Engine) alignJob(ctx context.Context, job BatchJob) BatchResult {
	if err := ctx.Err(); err != nil {
		return BatchResult{Err: err}
	}
	encText, err := e.encode("text", job.Text)
	if err != nil {
		return BatchResult{Err: err}
	}
	encQuery, err := e.encode("query", job.Query)
	if err != nil {
		return BatchResult{Err: err}
	}
	aln, err := e.runEncoded(ctx, encText, encQuery, job.Global)
	return BatchResult{Alignment: aln, Err: err}
}
