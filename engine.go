package genasm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"genasm/internal/alphabet"
	"genasm/internal/bitap"
	"genasm/internal/core"
	"genasm/internal/pool"
)

// AlphabetError reports an input that cannot be encoded in an engine's
// alphabet — the typed form of every "invalid character" failure the public
// API can produce, so callers can distinguish bad sequences from other
// errors with errors.As.
type AlphabetError struct {
	// Alphabet is the alphabet the input was checked against.
	Alphabet Alphabet
	// Input names the offending argument ("text", "query", "pattern", ...).
	Input string
	// Err is the underlying encode error, naming the character and position.
	Err error
}

// Error implements error.
func (e *AlphabetError) Error() string {
	return fmt.Sprintf("genasm: %s: %v", e.Input, e.Err)
}

// Unwrap exposes the underlying encode error.
func (e *AlphabetError) Unwrap() error { return e.Err }

// Engine is the single front door to every GenASM use case: read alignment
// (Align, AlignGlobal), edit distance (EditDistance), approximate text
// search (Search, Compile), pre-alignment filtering (Filter), batch
// alignment (AlignBatch) and read mapping (Map, NewMapper).
//
// An Engine is safe for concurrent use by any number of goroutines: all
// alignment work draws reusable workspaces from a sharded, capacity-bounded
// pool — the software analogue of the accelerator's fixed count of per-vault
// GenASM units (Section 7). Every method takes a context and returns
// ctx.Err() promptly when the context ends while the pool is saturated.
//
// Build one with NewEngine and share it; the zero value is not usable.
type Engine struct {
	cfg  Config
	a    *alphabet.Alphabet
	pool *pool.Pool

	// scratch pools multi-word Bitap searchers for Search and Filter, so
	// those hot paths reuse mask and row storage across calls instead of
	// reallocating per invocation.
	scratch sync.Pool

	// trace holds the optional AlignTrace hooks. Config must stay
	// comparable (it is used as a map key by callers and tests), so the
	// hooks live here behind an atomic pointer instead of in Config.
	trace atomic.Pointer[AlignTrace]
}

// newEngine is the shared constructor behind NewEngine and the deprecated
// Aligner/Pool shims.
func newEngine(cfg Config, shards, maxWorkspaces int) (*Engine, error) {
	coreCfg := cfg.coreConfig()
	p, err := pool.New(pool.Config{
		Core:          coreCfg,
		Shards:        shards,
		MaxWorkspaces: maxWorkspaces,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, a: coreCfg.Alphabet, pool: p}, nil
}

// Config returns the engine's alignment configuration.
func (e *Engine) Config() Config { return e.cfg }

// Alphabet returns the engine's alphabet.
func (e *Engine) Alphabet() Alphabet { return e.cfg.Alphabet }

// Capacity is the maximum number of concurrently running alignments.
func (e *Engine) Capacity() int { return e.pool.Config().MaxWorkspaces }

// PoolStats snapshots workspace pool activity: free-list hits, misses
// (workspace creations), workspaces currently in flight and idle, and the
// capacity.
type PoolStats = pool.Stats

// Stats snapshots the underlying workspace pool counters.
func (e *Engine) Stats() PoolStats { return e.pool.Stats() }

// encode lifts letters into dense codes, wrapping failures in the typed
// AlphabetError.
func (e *Engine) encode(input string, s []byte) ([]byte, error) {
	enc, err := e.a.Encode(s)
	if err != nil {
		return nil, &AlphabetError{Alphabet: e.cfg.Alphabet, Input: input, Err: err}
	}
	return enc, nil
}

// Align aligns query against text semi-globally: the query is consumed in
// full, the text may end early (and may start late with Config.SearchStart).
// This is the read alignment use case: text is the candidate reference
// region, query is the read.
func (e *Engine) Align(ctx context.Context, text, query []byte) (Alignment, error) {
	return e.run(ctx, text, query, false)
}

// AlignGlobal aligns query against text end to end; Distance is then the
// (upper-bound, almost always exact — see package tests) edit distance
// between the two sequences.
func (e *Engine) AlignGlobal(ctx context.Context, text, query []byte) (Alignment, error) {
	return e.run(ctx, text, query, true)
}

// EditDistance returns the edit distance between two sequences of arbitrary
// length (the Section 10.4 use case).
func (e *Engine) EditDistance(ctx context.Context, a, b []byte) (int, error) {
	aln, err := e.AlignGlobal(ctx, a, b)
	if err != nil {
		return 0, err
	}
	return aln.Distance, nil
}

func (e *Engine) run(ctx context.Context, text, query []byte, global bool) (Alignment, error) {
	encText, err := e.encode("text", text)
	if err != nil {
		return Alignment{}, err
	}
	encQuery, err := e.encode("query", query)
	if err != nil {
		return Alignment{}, err
	}
	return e.runEncoded(ctx, encText, encQuery, global)
}

// runEncoded aligns already-encoded sequences through the workspace pool —
// the one alignment dispatch shared by Align/AlignGlobal and AlignBatch,
// and therefore the one place AlignTrace hooks fire.
func (e *Engine) runEncoded(ctx context.Context, encText, encQuery []byte, global bool) (Alignment, error) {
	tr := e.trace.Load()
	var start time.Time
	if tr != nil && (tr.WorkspaceAcquired != nil || tr.Done != nil) {
		start = time.Now()
	}
	var out Alignment
	err := e.pool.Do(ctx, func(ws *core.Workspace) error {
		if tr != nil {
			if tr.WorkspaceAcquired != nil {
				tr.WorkspaceAcquired(time.Since(start))
			}
			if tr.Done != nil {
				// Restart the clock so Done sees pure alignment time.
				start = time.Now()
			}
		}
		var aln core.Alignment
		var alignErr error
		if global {
			aln, alignErr = ws.AlignGlobal(encText, encQuery)
		} else {
			aln, alignErr = ws.Align(encText, encQuery)
		}
		if alignErr != nil {
			return alignErr
		}
		out = alignmentFromCore(aln)
		return nil
	})
	if tr != nil && tr.Done != nil {
		tr.Done(len(encText), len(encQuery), time.Since(start), err)
	}
	if err != nil {
		err = convertPanicError(err)
	}
	return out, err
}

// searcher checks a reusable multi-word searcher out of the engine's
// scratch pool, re-targeted at (pattern, k). Return it with putSearcher.
func (e *Engine) searcher(encPattern []byte, k int) (*bitap.MultiWord, error) {
	if mw, ok := e.scratch.Get().(*bitap.MultiWord); ok {
		if err := mw.Reset(encPattern, k); err != nil {
			return nil, err
		}
		return mw, nil
	}
	return bitap.NewMultiWord(e.a, encPattern, k)
}

func (e *Engine) putSearcher(mw *bitap.MultiWord) { e.scratch.Put(mw) }

// defaultEngines backs the package-level convenience functions: one
// lazily-built default engine per alphabet.
var defaultEngines [4]struct {
	once sync.Once
	e    *Engine
	err  error
}

// defaultEngine returns the shared default-configuration engine for an
// alphabet.
func defaultEngine(a Alphabet) (*Engine, error) {
	if a < DNA || a > Bytes {
		a = DNA
	}
	d := &defaultEngines[a]
	d.once.Do(func() {
		d.e, d.err = newEngine(Config{Alphabet: a}, 0, 0)
	})
	return d.e, d.err
}

// DefaultEngine returns the lazily-built package-level Engine (default DNA
// configuration) shared by the package-level convenience functions.
func DefaultEngine() (*Engine, error) { return defaultEngine(DNA) }
