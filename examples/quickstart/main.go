// Quickstart: align a read against a reference region with GenASM and
// inspect the traceback, using only the public Engine API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"genasm"
)

func main() {
	ctx := context.Background()

	// One Engine serves every use case and is safe to share between any
	// number of goroutines.
	e, err := genasm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example (Figure 3/6): pattern CTGA against text
	// CGTGA contains one deletion.
	aln, err := e.AlignGlobal(ctx, []byte("CGTGA"), []byte("CTGA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== paper example: CTGA vs CGTGA ==")
	fmt.Printf("CIGAR %s  distance %d\n\n", aln.CIGAR, aln.Distance)

	// A more realistic case: a 100 bp read with a few errors against its
	// candidate region.
	region := []byte("TTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAGTTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAGAAACCCGGG")
	read := []byte("TTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAGTTACGGATCGTTGCTATCGGATCGATTACAGGCTTAACGGATTCTAGGACCAG")
	aln, err = e.Align(ctx, region, read)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== read vs candidate region ==")
	fmt.Printf("CIGAR    %s\n", aln.CIGAR)
	fmt.Printf("classic  %s\n", aln.ClassicCIGAR)
	fmt.Printf("distance %d, matches %d, text span [%d,%d)\n",
		aln.Distance, aln.Matches, aln.TextStart, aln.TextEnd)
	fmt.Printf("score    %d (BWA-MEM scheme), %d (Minimap2 scheme)\n\n",
		aln.Score(genasm.ScoringBWAMEM), aln.Score(genasm.ScoringMinimap2))

	// Edit distance between arbitrary-length sequences.
	d, err := e.EditDistance(ctx, []byte("GATTACAGATTACA"), []byte("GATTACAGTTTACA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit distance: %d\n", d)

	// Pre-alignment filtering: should this pair go to full alignment?
	ok, err := e.Filter(ctx, region, read, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter at k=8: accept=%v\n", ok)

	// The hardware model: what would the accelerator deliver?
	acc, err := genasm.NewAccelerator(genasm.AcceleratorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled accelerator: %.1f M short reads/s, %.2f mm2, %.2f W\n",
		acc.AlignmentsPerSecond(100, 0.05)/1e6, acc.AreaMM2(), acc.PowerW())
}
