// Generic text search: the paper's Section 11 extension — the GenASM
// pattern-bitmask pre-processing generalizes from {A,C,G,T} to any
// alphabet, enabling approximate search over plain text and protein
// sequences with no change to the distance calculation step. Patterns that
// scan repeatedly are compiled once with Engine.Compile so the bitmask
// pre-processing is amortized across calls.
//
// Run with: go run ./examples/textsearch
package main

import (
	"context"
	"fmt"
	"log"

	"genasm"
)

func main() {
	ctx := context.Background()

	// Approximate search in English text (Bytes alphabet).
	bytesEngine, err := genasm.NewEngine(genasm.WithAlphabet(genasm.Bytes))
	if err != nil {
		log.Fatal(err)
	}
	text := []byte(`It was the best of times, it was the wurst of times, ` +
		`it was the age of wisdom, it was the age of foolishnes`)
	fmt.Println("== fuzzy search for \"worst\" with up to 1 edit ==")
	matches, err := bytesEngine.Search(ctx, text, []byte("worst"), 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d  %q\n", m.Pos, m.Distance, text[m.Pos:min(len(text), m.Pos+5)])
	}

	// A compiled pattern amortizes the pattern pre-processing when the
	// same pattern scans many texts.
	fmt.Println("\n== compiled fuzzy search for \"foolishness\" with up to 1 edit ==")
	cp, err := bytesEngine.Compile([]byte("foolishness"), 1)
	if err != nil {
		log.Fatal(err)
	}
	matches, err = cp.Search(ctx, text)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// Protein search: the 20-letter amino acid alphabet.
	proteinEngine, err := genasm.NewEngine(genasm.WithAlphabet(genasm.Protein))
	if err != nil {
		log.Fatal(err)
	}
	protein := []byte("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQFEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLSPLHSVYVDQWDWE")
	query := []byte("KSHFSRQLEERLGLIEV") // exact fragment
	fmt.Println("\n== protein fragment search, exact ==")
	matches, err = proteinEngine.Search(ctx, protein, query, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// The same fragment with two mutations still hits within 2 edits.
	mutated := []byte("KSHFSRALEERLGLIDV")
	fmt.Println("\n== protein fragment search, 2 mutations, k=2 ==")
	matches, err = proteinEngine.Search(ctx, protein, mutated, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// Aligning RNA works the same way.
	rnaEngine, err := genasm.NewEngine(genasm.WithAlphabet(genasm.RNA))
	if err != nil {
		log.Fatal(err)
	}
	aln, err := rnaEngine.AlignGlobal(ctx, []byte("AUGGCUAGCUAA"), []byte("AUGGCAGCUAA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== RNA alignment ==\n  CIGAR %s  distance %d\n", aln.CIGAR, aln.Distance)
}
