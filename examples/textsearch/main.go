// Generic text search: the paper's Section 11 extension — the GenASM
// pattern-bitmask pre-processing generalizes from {A,C,G,T} to any
// alphabet, enabling approximate search over plain text and protein
// sequences with no change to the distance calculation step.
//
// Run with: go run ./examples/textsearch
package main

import (
	"fmt"
	"log"

	"genasm"
)

func main() {
	// Approximate search in English text (Bytes alphabet).
	text := []byte(`It was the best of times, it was the wurst of times, ` +
		`it was the age of wisdom, it was the age of foolishnes`)
	fmt.Println("== fuzzy search for \"worst\" with up to 1 edit ==")
	matches, err := genasm.Search(genasm.Bytes, text, []byte("worst"), 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d  %q\n", m.Pos, m.Distance, text[m.Pos:min(len(text), m.Pos+5)])
	}

	fmt.Println("\n== fuzzy search for \"foolishness\" with up to 1 edit ==")
	matches, err = genasm.Search(genasm.Bytes, text, []byte("foolishness"), 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// Protein search: the 20-letter amino acid alphabet.
	protein := []byte("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQFEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLSPLHSVYVDQWDWE")
	query := []byte("KSHFSRQLEERLGLIEV") // exact fragment
	fmt.Println("\n== protein fragment search, exact ==")
	matches, err = genasm.Search(genasm.Protein, protein, query, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// The same fragment with two mutations still hits within 2 edits.
	mutated := []byte("KSHFSRALEERLGLIDV")
	fmt.Println("\n== protein fragment search, 2 mutations, k=2 ==")
	matches, err = genasm.Search(genasm.Protein, protein, mutated, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  pos %3d  dist %d\n", m.Pos, m.Distance)
	}

	// Aligning RNA works the same way.
	al, err := genasm.NewAligner(genasm.Config{Alphabet: genasm.RNA})
	if err != nil {
		log.Fatal(err)
	}
	aln, err := al.AlignGlobal([]byte("AUGGCUAGCUAA"), []byte("AUGGCAGCUAA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== RNA alignment ==\n  CIGAR %s  distance %d\n", aln.CIGAR, aln.Distance)
}
