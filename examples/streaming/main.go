// Streaming end to end: write a gzipped FASTQ of simulated reads to a
// temporary file, then map it to SAM in O(1) read memory — records flow
// one at a time from seqio.Open through Mapper.MapStream (a bounded
// worker fan-out over the engine's workspace pool, the software shape of
// the accelerator streaming reads through per-vault GenASM units) into
// Mapper.WriteSAMStream. Also shows Engine.AlignStream on an iterator of
// batch jobs with the Unordered throughput mode.
//
// Run with: go run ./examples/streaming
package main

import (
	"compress/gzip"
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"genasm"
	"genasm/internal/alphabet"
	"genasm/internal/seq"
	"genasm/internal/simulate"
	"genasm/seqio"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(7, 7))

	// A synthetic reference and a gzipped FASTQ of reads simulated from it.
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(200_000))
	simReads, err := simulate.Reads(rng, genome, 500, simulate.Illumina150, true)
	if err != nil {
		log.Fatal(err)
	}
	fastqPath := filepath.Join(os.TempDir(), "genasm-streaming-example.fastq.gz")
	f, err := os.Create(fastqPath)
	if err != nil {
		log.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	fq := seqio.NewFASTQWriter(zw)
	for i, r := range simReads {
		rec := seqio.Record{Name: fmt.Sprintf("sim%d", i), Seq: alphabet.DNA.Decode(r.Seq)}
		if err := fq.WriteRecord(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := fq.Flush(); err != nil {
		log.Fatal(err)
	}
	zw.Close()
	f.Close()
	defer os.Remove(fastqPath)
	fmt.Printf("wrote %d reads to %s\n", len(simReads), fastqPath)

	// FASTQ -> SAM, streaming: the file is never loaded whole. seqio
	// autodetects the gzip layer and the FASTQ format; MapStream fans the
	// records out over the engine pool and emits mappings in input order.
	e, err := genasm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	m, err := e.NewMapper(alphabet.DNA.Decode(genome), genasm.MapperConfig{RefName: "chrE"})
	if err != nil {
		log.Fatal(err)
	}
	in, err := seqio.Open(fastqPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	reads := func(yield func(genasm.Read) bool) {
		for rec, err := range in.Records() {
			if err != nil {
				log.Fatal(err)
			}
			if !yield(genasm.Read{Name: rec.Name, Seq: rec.Seq}) {
				return
			}
		}
	}
	var sam strings.Builder
	if err := m.WriteSAMStream(&sam, m.MapStream(ctx, reads)); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sam.String(), "\n"), "\n")
	fmt.Printf("streamed %d SAM lines; first record:\n  %.100s...\n", len(lines), lines[3])

	// AlignStream: the same fan-out for raw alignment jobs. Unordered()
	// trades input order for throughput; Index ties results to jobs.
	jobs := make([]genasm.BatchJob, 200)
	for i := range jobs {
		enc := seq.Random(rng, 200)
		query := append([]byte(nil), enc...)
		for e := 0; e < 5; e++ { // plant a few substitutions
			p := rng.IntN(len(query))
			query[p] = (query[p] + byte(1+rng.IntN(3))) % 4
		}
		jobs[i] = genasm.BatchJob{
			Text:   alphabet.DNA.Decode(enc),
			Query:  alphabet.DNA.Decode(query),
			Global: true,
		}
	}
	dist := 0
	for res := range e.AlignStream(ctx, slices.Values(jobs), genasm.Unordered()) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		dist += res.Alignment.Distance
	}
	fmt.Printf("aligned %d streamed jobs, total edit distance %d\n", len(jobs), dist)
}
