// Pre-alignment filtering: the paper's second use case (Section 10.3).
// Evaluates the GenASM-DC filter against Shouji, SHD and a base-count
// bound on Shouji-style pair datasets, reporting false accept and false
// reject rates exactly as the paper does.
//
// Run with: go run ./examples/prefilter
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"genasm/internal/dp"
	"genasm/internal/filter"
)

func main() {
	datasets := []struct {
		length, e, pairs int
	}{
		{100, 5, 1000},
		{250, 15, 400},
	}
	filters := []filter.Filter{
		filter.GenASMDC{}, filter.Shouji{}, filter.SHD{}, filter.BaseCount{},
	}

	for _, d := range datasets {
		rng := rand.New(rand.NewPCG(uint64(d.length), 0))
		pairs := filter.GeneratePairs(rng, d.pairs, d.length, d.e, dp.EditDistance)
		fmt.Printf("\n== %d pairs of %d bp, edit threshold %d ==\n", d.pairs, d.length, d.e)
		fmt.Printf("%-12s %-14s %-14s %-12s %s\n", "filter", "false accept", "false reject", "accepted", "pairs/s")
		for _, f := range filters {
			st, err := filter.Evaluate(f, pairs, d.e)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			for _, p := range pairs {
				if _, err := f.Accept(p.Ref, p.Read, d.e); err != nil {
					log.Fatal(err)
				}
			}
			rate := float64(len(pairs)) / time.Since(start).Seconds()
			fmt.Printf("%-12s %-14s %-14s %-12d %.0f\n",
				f.Name(),
				fmt.Sprintf("%.3f%%", st.FalseAcceptRate()*100),
				fmt.Sprintf("%.3f%%", st.FalseRejectRate()*100),
				st.Accepted, rate)
		}
	}
	fmt.Println("\nPaper (Section 10.3): GenASM FA 0.02%/0.002%, Shouji FA 4%/17%, both FR 0%.")
}
