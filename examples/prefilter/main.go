// Pre-alignment filtering: the paper's second use case (Section 10.3).
// Evaluates the GenASM-DC filter — served through the public Engine.Filter
// API — against Shouji, SHD and a base-count bound on Shouji-style pair
// datasets, reporting false accept and false reject rates exactly as the
// paper does.
//
// Run with: go run ./examples/prefilter
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"genasm"
	"genasm/internal/alphabet"
	"genasm/internal/dp"
	"genasm/internal/filter"
)

// engineFilter adapts the public, pooled Engine.Filter into the internal
// filter harness so it is evaluated side by side with the baselines.
type engineFilter struct {
	e *genasm.Engine
}

func (f engineFilter) Name() string { return "GenASM-DC" }

func (f engineFilter) Accept(ref, read []byte, maxEdits int) (bool, error) {
	// The harness generates encoded pairs; the public API takes letters.
	return f.e.Filter(context.Background(),
		alphabet.DNA.Decode(ref), alphabet.DNA.Decode(read), maxEdits)
}

func main() {
	e, err := genasm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	datasets := []struct {
		length, e, pairs int
	}{
		{100, 5, 1000},
		{250, 15, 400},
	}
	filters := []filter.Filter{
		engineFilter{e: e}, filter.Shouji{}, filter.SHD{}, filter.BaseCount{},
	}

	for _, d := range datasets {
		rng := rand.New(rand.NewPCG(uint64(d.length), 0))
		pairs := filter.GeneratePairs(rng, d.pairs, d.length, d.e, dp.EditDistance)
		// Pre-decode once so the timed loop charges the engine only for
		// the work it really does per pair (encode + scan), not for the
		// adapter's letter conversion.
		letters := make([][2][]byte, len(pairs))
		for i, p := range pairs {
			letters[i] = [2][]byte{alphabet.DNA.Decode(p.Ref), alphabet.DNA.Decode(p.Read)}
		}
		fmt.Printf("\n== %d pairs of %d bp, edit threshold %d ==\n", d.pairs, d.length, d.e)
		fmt.Printf("%-12s %-14s %-14s %-12s %s\n", "filter", "false accept", "false reject", "accepted", "pairs/s")
		for _, f := range filters {
			st, err := filter.Evaluate(f, pairs, d.e)
			if err != nil {
				log.Fatal(err)
			}
			ctx := context.Background()
			start := time.Now()
			if ef, ok := f.(engineFilter); ok {
				for i := range pairs {
					if _, err := ef.e.Filter(ctx, letters[i][0], letters[i][1], d.e); err != nil {
						log.Fatal(err)
					}
				}
			} else {
				for _, p := range pairs {
					if _, err := f.Accept(p.Ref, p.Read, d.e); err != nil {
						log.Fatal(err)
					}
				}
			}
			rate := float64(len(pairs)) / time.Since(start).Seconds()
			fmt.Printf("%-12s %-14s %-14s %-12d %.0f\n",
				f.Name(),
				fmt.Sprintf("%.3f%%", st.FalseAcceptRate()*100),
				fmt.Sprintf("%.3f%%", st.FalseRejectRate()*100),
				st.Accepted, rate)
		}
	}
	fmt.Println("\nPaper (Section 10.3): GenASM FA 0.02%/0.002%, Shouji FA 4%/17%, both FR 0%.")
}
