// Edit distance at scale: the paper's third use case (Section 10.4).
// Compares GenASM's windowed DC+TB (through the public Engine API) against
// Myers' bit-vector algorithm (the core of Edlib) on long sequence pairs
// across similarity levels — the shape of Figure 14.
//
// Run with: go run ./examples/editdistance
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"genasm"
	"genasm/internal/alphabet"
	"genasm/internal/myers"
	"genasm/internal/seq"
)

func mutate(rng *rand.Rand, s []byte, similarity float64) []byte {
	out := append([]byte(nil), s...)
	edits := int(float64(len(s)) * (1 - similarity))
	for e := 0; e < edits; e++ {
		switch rng.IntN(3) {
		case 0:
			p := rng.IntN(len(out))
			out[p] = (out[p] + byte(1+rng.IntN(3))) % 4
		case 1:
			p := rng.IntN(len(out) + 1)
			out = append(out[:p], append([]byte{byte(rng.IntN(4))}, out[p:]...)...)
		default:
			p := rng.IntN(len(out))
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(7, 7))
	e, err := genasm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	const length = 100_000
	fmt.Printf("%-12s %-12s %-14s %-14s %-10s %s\n",
		"similarity", "true dist", "Myers (Edlib)", "GenASM", "speedup", "GenASM dist")
	for _, sim := range []float64{0.60, 0.80, 0.90, 0.95, 0.99} {
		a := seq.Random(rng, length)
		b := mutate(rng, a, sim)

		t0 := time.Now()
		exact, err := myers.Distance(a, b, alphabet.DNA.Size())
		if err != nil {
			log.Fatal(err)
		}
		myersT := time.Since(t0)

		// The engine takes letters; decoding is outside the timed section
		// so both sides measure pure distance calculation.
		al := alphabet.DNA.Decode(a)
		bl := alphabet.DNA.Decode(b)
		t0 = time.Now()
		got, err := e.EditDistance(ctx, al, bl)
		if err != nil {
			log.Fatal(err)
		}
		genasmT := time.Since(t0)

		marker := "(exact)"
		if got != exact {
			marker = fmt.Sprintf("(+%d over exact %d)", got-exact, exact)
		}
		fmt.Printf("%-12.0f%% %-11d %-14s %-14s %-10.1fx %d %s\n",
			sim*100, exact,
			myersT.Round(time.Millisecond), genasmT.Round(time.Millisecond),
			myersT.Seconds()/genasmT.Seconds(), got, marker)
	}
	fmt.Println("\nNote: GenASM's windowed distance is an upper bound that is almost")
	fmt.Println("always exact; the paper reports the same behaviour as small score")
	fmt.Println("deviations in its accuracy analysis (Section 10.2).")
}
