// Read mapping end to end: simulate a genome and reads, then run the full
// four-step pipeline of the paper's Figure 1 — indexing, seeding,
// pre-alignment filtering (GenASM-DC) and read alignment (GenASM DC+TB) —
// through the public Engine.NewMapper API and score the mappings against
// the simulation ground truth.
//
// Run with: go run ./examples/readmapping
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"genasm"
	"genasm/internal/alphabet"
	"genasm/internal/seq"
	"genasm/internal/simulate"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(42, 0))

	fmt.Println("generating a 500 kbp synthetic genome with repeats...")
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(500_000))
	genomeLetters := alphabet.DNA.Decode(genome)

	e, err := genasm.NewEngine(genasm.WithSearchStart(true))
	if err != nil {
		log.Fatal(err)
	}

	datasets := []struct {
		profile simulate.Profile
		n       int
		seedK   int
	}{
		{simulate.Illumina150, 200, 15},
		{simulate.PacBio10, 5, 13},
	}

	for _, d := range datasets {
		simReads, err := simulate.Reads(rng, genome, d.n, d.profile, true)
		if err != nil {
			log.Fatal(err)
		}
		reads := make([]genasm.Read, len(simReads))
		truePos := make([]int, len(simReads))
		for i, r := range simReads {
			reads[i] = genasm.Read{
				Name: fmt.Sprintf("sim%d", i),
				Seq:  alphabet.DNA.Decode(r.Seq),
			}
			truePos[i] = r.Pos
		}

		// Pre-alignment filtering is a short-read step (Section 8); long
		// reads go straight from seeding to alignment.
		m, err := e.NewMapper(genomeLetters, genasm.MapperConfig{
			SeedParams: genasm.SeedParams{SeedK: d.seedK},
			ErrorRate:  d.profile.ErrorRate,
			Prefilter:  d.profile.ReadLen <= 1000,
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		mappings, err := m.MapReads(ctx, reads)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		var mapped, correct, candidates, filtered, aligned, totalEdits int
		for i, mp := range mappings {
			candidates += mp.Candidates
			filtered += mp.Filtered
			aligned += mp.Aligned
			if !mp.Mapped {
				continue
			}
			mapped++
			totalEdits += mp.Distance
			if diff := mp.Pos - truePos[i]; diff >= -64 && diff <= 64 {
				correct++
			}
		}

		fmt.Printf("\n== %s: %d reads ==\n", d.profile.Name, d.n)
		fmt.Printf("mapped:     %d/%d\n", mapped, len(reads))
		fmt.Printf("correct:    %d/%d (within 64 bp of truth)\n", correct, len(reads))
		fmt.Printf("candidates: %d tried, %d filtered out, %d aligned\n",
			candidates, filtered, aligned)
		fmt.Printf("avg edits:  %.1f per mapped read\n", float64(totalEdits)/float64(max(1, mapped)))
		fmt.Printf("time:       %s (%.0f reads/s, single thread)\n",
			elapsed.Round(time.Millisecond), float64(len(reads))/elapsed.Seconds())
	}
}
