// Read mapping end to end: simulate a genome and reads, then run the full
// four-step pipeline of the paper's Figure 1 — indexing, seeding,
// pre-alignment filtering (GenASM-DC) and read alignment (GenASM DC+TB) —
// and score the mappings against the simulation ground truth.
//
// Run with: go run ./examples/readmapping
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"genasm/internal/filter"
	"genasm/internal/mapper"
	"genasm/internal/seq"
	"genasm/internal/simulate"
)

func main() {
	rng := rand.New(rand.NewPCG(42, 0))

	fmt.Println("generating a 500 kbp synthetic genome with repeats...")
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(500_000))

	datasets := []struct {
		profile simulate.Profile
		n       int
		seedK   int
	}{
		{simulate.Illumina150, 200, 15},
		{simulate.PacBio10, 5, 13},
	}

	for _, d := range datasets {
		reads, err := simulate.Reads(rng, genome, d.n, d.profile, true)
		if err != nil {
			log.Fatal(err)
		}
		rs := make([][]byte, len(reads))
		truePos := make([]int, len(reads))
		for i, r := range reads {
			rs[i] = r.Seq
			truePos[i] = r.Pos
		}

		// Pre-alignment filtering is a short-read step (Section 8); long
		// reads go straight from seeding to alignment.
		var flt filter.Filter
		if d.profile.ReadLen <= 1000 {
			flt = filter.GenASMDC{}
		}
		m, err := mapper.New(genome, mapper.Config{
			SeedK:     d.seedK,
			ErrorRate: d.profile.ErrorRate,
			Filter:    flt,
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		_, st, err := m.MapAll(rs, truePos, 64)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		fmt.Printf("\n== %s: %d reads ==\n", d.profile.Name, d.n)
		fmt.Printf("mapped:     %d/%d\n", st.Mapped, st.Reads)
		fmt.Printf("correct:    %d/%d (within 64 bp of truth)\n", st.Correct, st.Reads)
		fmt.Printf("candidates: %d tried, %d filtered out, %d aligned\n",
			st.Candidates, st.Filtered, st.Aligned)
		fmt.Printf("avg edits:  %.1f per mapped read\n", float64(st.TotalEdits)/float64(max(1, st.Mapped)))
		fmt.Printf("time:       %s (%.0f reads/s, single thread)\n",
			elapsed.Round(time.Millisecond), float64(st.Reads)/elapsed.Seconds())
	}
}
