package genasm

import (
	"fmt"
	"strings"

	"genasm/internal/alphabet"
	"genasm/internal/cigar"
	"genasm/internal/core"
)

// Alphabet selects the character set of the inputs.
type Alphabet int

// Supported alphabets (Section 11: DNA plus RNA, protein and raw bytes for
// generic text search).
const (
	DNA Alphabet = iota
	RNA
	Protein
	Bytes
)

func (a Alphabet) impl() *alphabet.Alphabet {
	switch a {
	case RNA:
		return alphabet.RNA
	case Protein:
		return alphabet.Protein
	case Bytes:
		return alphabet.Bytes
	default:
		return alphabet.DNA
	}
}

// String implements fmt.Stringer.
func (a Alphabet) String() string { return a.impl().Name() }

// ParseAlphabet maps a name ("dna", "rna", "protein", "bytes") to its
// Alphabet; it is the inverse of String for flag and API parsing.
func ParseAlphabet(name string) (Alphabet, error) {
	for _, a := range []Alphabet{DNA, RNA, Protein, Bytes} {
		if strings.EqualFold(name, a.String()) {
			return a, nil
		}
	}
	return DNA, fmt.Errorf("genasm: unknown alphabet %q", name)
}

// Kernel selects the alignment kernel's DC/TB storage layout. Both
// kernels produce identical alignments (they are differentially tested);
// they differ in speed and scratch memory.
type Kernel int

const (
	// KernelScrooge (the default) applies Scrooge's SENE and DENT
	// optimizations: the DC phase stores one bitvector per (text
	// position, error level) entry instead of four per-edge vectors, and
	// skips entries the windowed traceback can never read — ~3x less
	// traceback memory and about 2x faster alignment.
	KernelScrooge Kernel = iota
	// KernelBaseline is the GenASM paper's original TB-SRAM layout,
	// kept for differential testing and operation-count-faithful
	// comparisons.
	KernelBaseline
)

// String implements fmt.Stringer.
func (k Kernel) String() string { return k.impl().String() }

// impl lowers the public Kernel by value so that unknown kernels reach
// core.Config validation instead of being coerced to a valid one.
func (k Kernel) impl() core.Kernel { return core.Kernel(k) }

// ParseKernel maps a name ("scrooge", "baseline") to its Kernel; it is
// the inverse of String for flag and API parsing.
func ParseKernel(name string) (Kernel, error) {
	for _, k := range []Kernel{KernelScrooge, KernelBaseline} {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return KernelScrooge, fmt.Errorf("genasm: unknown kernel %q", name)
}

// Config parameterizes an Engine. The zero value is the paper's setup:
// DNA alphabet, window size 64, overlap 24, affine-gap-aware traceback.
type Config struct {
	// Alphabet of the input sequences.
	Alphabet Alphabet
	// WindowSize (W) and Overlap (O) are the divide-and-conquer
	// parameters; zero values select the paper's W=64, O=24.
	WindowSize int
	Overlap    int
	// SearchStart lets the alignment begin at the best matching position
	// within the first window instead of exactly at the text start —
	// the right setting when the text is a candidate region whose start
	// is approximate.
	SearchStart bool
	// GapsBeforeSubstitutions inverts the traceback preference order for
	// scoring schemes where gaps are cheaper than substitutions
	// (Section 6, partial support for complex scoring schemes).
	GapsBeforeSubstitutions bool
	// Kernel selects the alignment kernel. The zero value is
	// KernelScrooge (SENE+DENT); KernelBaseline restores the paper's
	// original per-edge storage layout.
	Kernel Kernel
}

// coreConfig lowers the public Config to the internal core configuration.
func (cfg Config) coreConfig() core.Config {
	c := core.Config{
		Alphabet:             cfg.Alphabet.impl(),
		WindowSize:           cfg.WindowSize,
		Overlap:              cfg.Overlap,
		FindFirstWindowStart: cfg.SearchStart,
		Kernel:               cfg.Kernel.impl(),
	}
	if cfg.GapsBeforeSubstitutions {
		c.Order = core.OrderGapFirst
	}
	return c
}

// Alignment is the result of aligning a query against a text.
type Alignment struct {
	// CIGAR is the extended CIGAR string ('='/'X'/'I'/'D').
	CIGAR string
	// ClassicCIGAR merges '=' and 'X' into 'M' runs.
	ClassicCIGAR string
	// Distance is the edit distance of the alignment.
	Distance int
	// TextStart and TextEnd delimit the aligned text region.
	TextStart, TextEnd int
	// Matches is the number of exactly matching positions.
	Matches int

	runs cigar.Cigar
}

// alignmentFromCore lifts a core alignment into the public result type.
// The core Cigar views a pooled workspace's arena, so the retained runs
// are cloned: public Alignments are always caller-owned.
func alignmentFromCore(aln core.Alignment) Alignment {
	return Alignment{
		CIGAR:        aln.Cigar.String(),
		ClassicCIGAR: aln.Cigar.Format(false),
		Distance:     aln.Distance,
		TextStart:    aln.TextStart,
		TextEnd:      aln.TextEnd,
		Matches:      aln.Cigar.Matches(),
		runs:         aln.Cigar.Clone(),
	}
}

// Score evaluates the alignment under an affine-gap scoring scheme.
func (a Alignment) Score(s Scoring) int {
	return cigar.Scoring(s).Score(a.runs)
}

// Scoring is an affine-gap scoring scheme: Match is a reward (positive),
// the rest are penalties (negative). GapOpen is charged once per gap in
// addition to GapExtend per gapped character.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

// Predefined scoring schemes used in the paper's accuracy analysis.
var (
	// ScoringBWAMEM is BWA-MEM's default scheme.
	ScoringBWAMEM = Scoring{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1}
	// ScoringMinimap2 is Minimap2's default scheme.
	ScoringMinimap2 = Scoring{Match: 2, Mismatch: -4, GapOpen: -4, GapExtend: -2}
)

// The pre-Engine compatibility shims (Aligner, Pool, the free Search/
// Filter/AlignBatch/EditDistance functions) live in deprecated.go.
