package genasm

import (
	"fmt"
	"strings"

	"genasm/internal/alphabet"
	"genasm/internal/cigar"
	"genasm/internal/core"
)

// Alphabet selects the character set of the inputs.
type Alphabet int

// Supported alphabets (Section 11: DNA plus RNA, protein and raw bytes for
// generic text search).
const (
	DNA Alphabet = iota
	RNA
	Protein
	Bytes
)

func (a Alphabet) impl() *alphabet.Alphabet {
	switch a {
	case RNA:
		return alphabet.RNA
	case Protein:
		return alphabet.Protein
	case Bytes:
		return alphabet.Bytes
	default:
		return alphabet.DNA
	}
}

// String implements fmt.Stringer.
func (a Alphabet) String() string { return a.impl().Name() }

// ParseAlphabet maps a name ("dna", "rna", "protein", "bytes") to its
// Alphabet; it is the inverse of String for flag and API parsing.
func ParseAlphabet(name string) (Alphabet, error) {
	for _, a := range []Alphabet{DNA, RNA, Protein, Bytes} {
		if strings.EqualFold(name, a.String()) {
			return a, nil
		}
	}
	return DNA, fmt.Errorf("genasm: unknown alphabet %q", name)
}

// Config parameterizes an Aligner. The zero value is the paper's setup:
// DNA alphabet, window size 64, overlap 24, affine-gap-aware traceback.
type Config struct {
	// Alphabet of the input sequences.
	Alphabet Alphabet
	// WindowSize (W) and Overlap (O) are the divide-and-conquer
	// parameters; zero values select the paper's W=64, O=24.
	WindowSize int
	Overlap    int
	// SearchStart lets the alignment begin at the best matching position
	// within the first window instead of exactly at the text start —
	// the right setting when the text is a candidate region whose start
	// is approximate.
	SearchStart bool
	// GapsBeforeSubstitutions inverts the traceback preference order for
	// scoring schemes where gaps are cheaper than substitutions
	// (Section 6, partial support for complex scoring schemes).
	GapsBeforeSubstitutions bool
}

// coreConfig lowers the public Config to the internal core configuration.
func (cfg Config) coreConfig() core.Config {
	c := core.Config{
		Alphabet:             cfg.Alphabet.impl(),
		WindowSize:           cfg.WindowSize,
		Overlap:              cfg.Overlap,
		FindFirstWindowStart: cfg.SearchStart,
	}
	if cfg.GapsBeforeSubstitutions {
		c.Order = core.OrderGapFirst
	}
	return c
}

// Alignment is the result of aligning a query against a text.
type Alignment struct {
	// CIGAR is the extended CIGAR string ('='/'X'/'I'/'D').
	CIGAR string
	// ClassicCIGAR merges '=' and 'X' into 'M' runs.
	ClassicCIGAR string
	// Distance is the edit distance of the alignment.
	Distance int
	// TextStart and TextEnd delimit the aligned text region.
	TextStart, TextEnd int
	// Matches is the number of exactly matching positions.
	Matches int

	runs cigar.Cigar
}

// alignmentFromCore lifts a core alignment into the public result type.
func alignmentFromCore(aln core.Alignment) Alignment {
	return Alignment{
		CIGAR:        aln.Cigar.String(),
		ClassicCIGAR: aln.Cigar.Format(false),
		Distance:     aln.Distance,
		TextStart:    aln.TextStart,
		TextEnd:      aln.TextEnd,
		Matches:      aln.Cigar.Matches(),
		runs:         aln.Cigar,
	}
}

// Score evaluates the alignment under an affine-gap scoring scheme.
func (a Alignment) Score(s Scoring) int {
	return cigar.Scoring(s).Score(a.runs)
}

// Scoring is an affine-gap scoring scheme: Match is a reward (positive),
// the rest are penalties (negative). GapOpen is charged once per gap in
// addition to GapExtend per gapped character.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

// Predefined scoring schemes used in the paper's accuracy analysis.
var (
	// ScoringBWAMEM is BWA-MEM's default scheme.
	ScoringBWAMEM = Scoring{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1}
	// ScoringMinimap2 is Minimap2's default scheme.
	ScoringMinimap2 = Scoring{Match: 2, Mismatch: -4, GapOpen: -4, GapExtend: -2}
)

// Aligner aligns queries against texts with the GenASM algorithms. An
// Aligner owns reusable scratch memory (the software analogue of one
// accelerator's SRAMs) and is not safe for concurrent use; create one per
// goroutine.
type Aligner struct {
	cfg Config
	ws  *core.Workspace
	a   *alphabet.Alphabet
}

// NewAligner builds an Aligner.
func NewAligner(cfg Config) (*Aligner, error) {
	coreCfg := cfg.coreConfig()
	ws, err := core.New(coreCfg)
	if err != nil {
		return nil, err
	}
	return &Aligner{cfg: cfg, ws: ws, a: coreCfg.Alphabet}, nil
}

// Align aligns query against text semi-globally: the query is consumed in
// full, the text may end early (and may start late with
// Config.SearchStart). This is the read alignment use case: text is the
// candidate reference region, query is the read.
func (al *Aligner) Align(text, query []byte) (Alignment, error) {
	return al.run(text, query, false)
}

// AlignGlobal aligns query against text end to end; Distance is then the
// (upper-bound, almost always exact — see package tests) edit distance
// between the two sequences.
func (al *Aligner) AlignGlobal(text, query []byte) (Alignment, error) {
	return al.run(text, query, true)
}

// EditDistance returns the edit distance between two sequences of
// arbitrary length (the Section 10.4 use case).
func (al *Aligner) EditDistance(a, b []byte) (int, error) {
	aln, err := al.AlignGlobal(a, b)
	if err != nil {
		return 0, err
	}
	return aln.Distance, nil
}

func (al *Aligner) run(text, query []byte, global bool) (Alignment, error) {
	encText, err := al.a.Encode(text)
	if err != nil {
		return Alignment{}, fmt.Errorf("genasm: text: %w", err)
	}
	encQuery, err := al.a.Encode(query)
	if err != nil {
		return Alignment{}, fmt.Errorf("genasm: query: %w", err)
	}
	var aln core.Alignment
	if global {
		aln, err = al.ws.AlignGlobal(encText, encQuery)
	} else {
		aln, err = al.ws.Align(encText, encQuery)
	}
	if err != nil {
		return Alignment{}, err
	}
	return alignmentFromCore(aln), nil
}

// EditDistance is a convenience wrapper: DNA alphabet, default
// configuration. It draws scratch memory from the package-level default
// Pool, so it is safe for concurrent use and does not allocate a fresh
// workspace per call.
func EditDistance(a, b []byte) (int, error) {
	p, err := DefaultPool()
	if err != nil {
		return 0, err
	}
	return p.EditDistance(a, b)
}
