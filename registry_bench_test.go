package genasm_test

// Benchmarks for the multi-reference registry serving path. They live in
// an external test package: internal/registry imports genasm, so the root
// package's own test binary cannot import it without a cycle.
//
// Registry/acquire-hit is the per-request overhead every /v1/map request
// pays to resolve and pin its reference — it must stay trivial next to the
// mapping work itself. Registry/load-evict is the cold path: an Acquire
// that mmap-loads the index file because the budget just evicted it.

import (
	"context"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"genasm"
	"genasm/internal/alphabet"
	"genasm/internal/registry"
	"genasm/internal/seq"
)

// benchRegistry builds a registry over freshly written index files, one
// per name.
func benchRegistry(b *testing.B, budget int64, names ...string) *registry.Registry {
	b.Helper()
	e, err := genasm.NewEngine(genasm.WithSearchStart(true))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	r, err := registry.New(registry.Config{
		NewMapper: func(ri *genasm.RefIndex, name string) (*genasm.Mapper, error) {
			return e.NewMapperFromIndex(ri, genasm.MapperConfig{RefName: name})
		},
		MaxResidentBytes: budget,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, name := range names {
		rng := rand.New(rand.NewPCG(uint64(900+i), 0))
		ref := alphabet.DNA.Decode(seq.Genome(rng, seq.DefaultGenomeConfig(50000)))
		ri, err := e.BuildRefIndex(ref, genasm.RefIndexConfig{RefName: name})
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, name+".gasmidx")
		if err := ri.WriteFile(path); err != nil {
			b.Fatal(err)
		}
		ri.Close()
		if err := r.AddFile(name, path); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { r.Close() })
	return r
}

func BenchmarkRegistry(b *testing.B) {
	b.Run("acquire-hit", func(b *testing.B) {
		r := benchRegistry(b, 0, "chrA")
		if err := r.Load("chrA"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h, err := r.Acquire("chrA")
				if err != nil {
					b.Error(err)
					return
				}
				h.Release()
			}
		})
	})

	b.Run("acquire-map-read", func(b *testing.B) {
		// The full serving resolve: pin, map one read, release — what one
		// /v1/map/stream record costs end to end through the registry.
		r := benchRegistry(b, 0, "chrA")
		h, err := r.Acquire("chrA")
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(900, 0))
		genome := seq.Genome(rng, seq.DefaultGenomeConfig(50000))
		read := alphabet.DNA.Decode(genome[7000:7150])
		h.Release()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := r.Acquire("chrA")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.Mapper().MapRead(ctx, read); err != nil {
				b.Fatal(err)
			}
			h.Release()
		}
	})

	b.Run("load-evict", func(b *testing.B) {
		// Budget of one index: every alternation between the two names
		// evicts one reference and mmap-loads the other.
		r := benchRegistry(b, 1, "chrA", "chrB")
		names := []string{"chrA", "chrB"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := r.Acquire(names[i%2])
			if err != nil {
				b.Fatal(err)
			}
			h.Release()
		}
		b.StopTimer()
		if st := r.Stats(); st.Evictions < int64(b.N-2) {
			b.Fatalf("budget did not force eviction churn: %+v (N=%d)", st, b.N)
		}
	})
}
