package genasm

import (
	"context"

	"genasm/internal/bitap"
)

// Match is an approximate occurrence of a pattern in a text.
type Match struct {
	// Pos is the text position where the occurrence starts.
	Pos int
	// Distance is the occurrence's edit distance.
	Distance int
}

// ascendingMatches lifts the scan's decreasing-position matches into the
// public Match type in ascending text order — the one conversion path
// shared by Engine.Search and CompiledPattern.Search.
func ascendingMatches(raw []bitap.Match) []Match {
	out := make([]Match, len(raw))
	for i, m := range raw {
		out[len(raw)-1-i] = Match{Pos: m.Loc, Distance: m.Dist}
	}
	return out
}

// Search finds all positions where pattern occurs in text with at most
// maxEdits edits, in ascending position order, using the multi-word
// GenASM-DC scan (pattern length is unrestricted). With the Bytes alphabet
// this is the paper's generic text search (Section 11).
//
// Search regenerates the pattern bitmasks on every call (row scratch is
// reused from an engine-owned pool); when the same pattern scans many
// texts, Compile once and use CompiledPattern.Search to amortize the whole
// pre-processing step.
func (e *Engine) Search(ctx context.Context, text, pattern []byte, maxEdits int) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	encText, err := e.encode("text", text)
	if err != nil {
		return nil, err
	}
	encPattern, err := e.encode("pattern", pattern)
	if err != nil {
		return nil, err
	}
	mw, err := e.searcher(encPattern, maxEdits)
	if err != nil {
		return nil, err
	}
	defer e.putSearcher(mw)
	mw.SetEndPadding(false)
	return ascendingMatches(mw.Search(encText)), nil
}

// Filter is the pre-alignment filtering use case (Section 10.3): it reports
// whether read may be within maxEdits edits of some position in region,
// computing the exact semi-global distance with GenASM-DC. A false return
// safely eliminates the pair from further alignment (the filter never
// false-rejects); a true return may rarely be a false accept (the paper
// measures 0.02% and explains the leading-deletion cause in footnote 4).
//
// The pair is encoded with the engine's alphabet; inputs outside it are
// reported as an *AlphabetError. Scratch memory is drawn from an
// engine-owned pool, so the hot filtering path does not reallocate per pair.
func (e *Engine) Filter(ctx context.Context, region, read []byte, maxEdits int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	encRegion, err := e.encode("region", region)
	if err != nil {
		return false, err
	}
	encRead, err := e.encode("read", read)
	if err != nil {
		return false, err
	}
	mw, err := e.searcher(encRead, maxEdits)
	if err != nil {
		return false, err
	}
	defer e.putSearcher(mw)
	// End-padding makes the reported distance the exact semi-global
	// distance even when the alignment presses against the region end
	// (Section 10.3: "GenASM calculates the actual distance").
	mw.SetEndPadding(true)
	return mw.Distance(encRegion) <= maxEdits, nil
}
