package genasm

import (
	"fmt"

	"genasm/internal/alphabet"
	"genasm/internal/bitap"
	"genasm/internal/filter"
)

// Match is an approximate occurrence of a pattern in a text.
type Match struct {
	// Pos is the text position where the occurrence starts.
	Pos int
	// Distance is the occurrence's edit distance.
	Distance int
}

// Search finds all positions where pattern occurs in text with at most
// maxEdits edits, using the multi-word GenASM-DC scan (pattern length is
// unrestricted). With alpha == Bytes this is the paper's generic text
// search (Section 11).
func Search(alpha Alphabet, text, pattern []byte, maxEdits int) ([]Match, error) {
	a := alpha.impl()
	encText, err := a.Encode(text)
	if err != nil {
		return nil, fmt.Errorf("genasm: text: %w", err)
	}
	encPattern, err := a.Encode(pattern)
	if err != nil {
		return nil, fmt.Errorf("genasm: pattern: %w", err)
	}
	mw, err := bitap.NewMultiWord(a, encPattern, maxEdits)
	if err != nil {
		return nil, err
	}
	raw := mw.Search(encText)
	// The scan reports in decreasing position order; present ascending.
	out := make([]Match, len(raw))
	for i, m := range raw {
		out[len(raw)-1-i] = Match{Pos: m.Loc, Distance: m.Dist}
	}
	return out, nil
}

// Filter is the pre-alignment filtering use case (Section 10.3): it
// reports whether read may be within maxEdits edits of some position in
// region, computing the exact semi-global distance with GenASM-DC. A false
// return safely eliminates the pair from further alignment (the filter
// never false-rejects); a true return may rarely be a false accept (the
// paper measures 0.02% and explains the leading-deletion cause in
// footnote 4).
func Filter(region, read []byte, maxEdits int) (bool, error) {
	encRegion, err := alphabet.DNA.Encode(region)
	if err != nil {
		return false, fmt.Errorf("genasm: region: %w", err)
	}
	encRead, err := alphabet.DNA.Encode(read)
	if err != nil {
		return false, fmt.Errorf("genasm: read: %w", err)
	}
	return filter.GenASMDC{}.Accept(encRegion, encRead, maxEdits)
}
