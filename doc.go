// Package genasm is a Go implementation of GenASM (Senol Cali et al.,
// MICRO 2020): a Bitap-based approximate string matching framework for
// genome sequence analysis, consisting of the GenASM-DC distance
// calculation algorithm (multi-word Bitap with windowed divide-and-conquer)
// and the GenASM-TB traceback algorithm (the first Bitap-compatible
// traceback), together with a model of the paper's systolic-array hardware
// accelerator.
//
// The package exposes the paper's three evaluated use cases:
//
//   - read alignment: Aligner.Align / Aligner.AlignGlobal produce a CIGAR
//     and edit distance for a query against a reference region of any
//     length;
//   - pre-alignment filtering: Filter gives a fast accept/reject decision
//     for a (region, read) pair under an edit distance threshold;
//   - edit distance calculation: EditDistance works on sequences of
//     arbitrary length through the divide-and-conquer windows.
//
// Generic text search over arbitrary byte alphabets (Section 11 of the
// paper) is available through Search, and Accelerator models the
// performance, area and power of the hardware design.
//
// For concurrent serving, Pool is a concurrency-safe Aligner backed by a
// sharded pool of reusable workspaces — the software analogue of the
// accelerator's one-GenASM-unit-per-vault parallelism — so any number of
// goroutines can share one Pool instead of holding an Aligner each. The
// genasm-serve command (cmd/genasm-serve) exposes the Pool as a
// long-running HTTP JSON service with align, batch and read-mapping
// endpoints, bounded admission queueing (429 on overload) and graceful
// shutdown; see internal/server for the API.
//
// Sequences are passed as ASCII letters (e.g. "ACGT" for the default DNA
// alphabet) and are encoded internally. The underlying algorithm packages
// live in internal/ and operate on dense codes.
package genasm
