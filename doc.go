// Package genasm is a Go implementation of GenASM (Senol Cali et al.,
// MICRO 2020): a Bitap-based approximate string matching framework for
// genome sequence analysis, consisting of the GenASM-DC distance
// calculation algorithm (multi-word Bitap with windowed divide-and-conquer)
// and the GenASM-TB traceback algorithm (the first Bitap-compatible
// traceback), together with a model of the paper's systolic-array hardware
// accelerator.
//
// # Engine
//
// Engine is the single front door to every use case the paper evaluates.
// It is built once with NewEngine (functional options configure alphabet,
// windowing and pool sizing), is safe for concurrent use by any number of
// goroutines, and serves every call context-first: all alignment work
// draws reusable workspaces from a sharded, capacity-bounded pool — the
// software analogue of the accelerator's one-GenASM-unit-per-vault layout
// (Section 7) — and a context that ends while the pool is saturated
// returns ctx.Err() promptly.
//
//   - read alignment: Engine.Align / Engine.AlignGlobal produce a CIGAR
//     and edit distance for a query against a reference region of any
//     length;
//   - edit distance: Engine.EditDistance works on sequences of arbitrary
//     length through the divide-and-conquer windows (Section 10.4);
//   - pre-alignment filtering: Engine.Filter gives a fast accept/reject
//     decision for a (region, read) pair under an edit distance threshold
//     (Section 10.3), drawing scratch from an engine-owned pool;
//   - generic text search: Engine.Search scans any alphabet, including raw
//     Bytes (Section 11); Engine.Compile returns a CompiledPattern that
//     amortizes the pattern pre-processing across repeated Search/Filter
//     calls on one pattern;
//   - batch alignment: Engine.AlignBatch streams jobs through the engine's
//     pool with per-job error reporting;
//   - read mapping: Engine.NewMapper indexes a reference and returns a
//     concurrency-safe Mapper running the full Figure 1 pipeline (seeding,
//     optional GenASM-DC filtering, GenASM alignment) with SAM output;
//     Engine.Map is the one-shot convenience.
//
// # Streaming
//
// The batch and mapping slice APIs are thin wrappers over an
// iterator-based stream core — the shape of the accelerator's throughput
// story (reads streaming through a fixed count of per-vault GenASM units,
// Section 10.5) and of the primary workload, where a FASTQ stream of
// reads becomes a SAM stream of records. Engine.AlignStream turns an
// iter.Seq[BatchJob] into an iter.Seq[BatchResult], and Mapper.MapStream
// an iter.Seq[Read] into an iter.Seq[MappingResult]: jobs are pulled on
// demand and fanned out over at most Engine.Capacity lazily-spawned
// workers, results come back in input order (or as completed, with the
// Unordered option) and memory stays bounded by the worker count — O(1)
// in the stream length. Mapper.WriteSAMStream renders a result stream as
// SAM record by record.
//
// The genasm/seqio package is the file-facing half: streaming FASTA and
// FASTQ readers (gzip and format autodetection, CRLF and lowercase
// tolerance, line-numbered errors on corrupt records) that yield
// iter.Seq2[Record, error], so `genasm map -reads reads.fastq.gz` maps a
// read set of any size in constant read memory.
//
// Inputs are ASCII letters of the engine's alphabet (e.g. "ACGT" for DNA);
// letters outside it are reported as *AlphabetError. Accelerator models
// the performance, area and power of the hardware design.
//
// # Persistent reference indexes
//
// Engine.NewMapper rebuilds the seed index from the reference on every
// call. For references mapped against repeatedly, Engine.BuildRefIndex
// constructs a RefIndex once — with a choice of seeding backend:
// IndexHash (every k-mer), IndexMinimizer (windowed sampling) or
// IndexSuffixArray (SA-IS suffix array) — RefIndex.WriteFile persists it
// in a versioned, checksummed on-disk format, and LoadRefIndex memory-maps
// it back (falling back to a heap copy where mmap is unavailable).
// Engine.NewMapperFromIndex then boots a Mapper in file-validation time
// rather than index-construction time; all backends and both storage
// forms produce identical mappings, and the loaded index seeds without
// allocating. `genasm index build`/`inspect` and `genasm-serve -ref-index`
// are the command-line faces of the same workflow.
//
// # Kernels
//
// WithKernel selects the alignment kernel. KernelScrooge, the default,
// applies Scrooge's SENE and DENT optimizations (one stored bitvector per
// traceback entry instead of four per-edge vectors, and no stores for
// entries the windowed traceback cannot reach): pooled workspaces shrink
// about 3x and alignment runs about 2x faster. KernelBaseline keeps the
// paper's original storage layout; both kernels produce identical
// alignments and are differentially fuzz-tested against each other.
//
// # Result retention and CIGAR arenas
//
// The public API returns caller-owned values: Alignment.CIGAR strings,
// ReadMapping results and the runs behind Alignment.Score are copied out
// of the engine's pooled scratch before a workspace returns to the pool,
// so they may be stored, sent across goroutines and retained freely.
//
// The internal core (and anything driving a core.Workspace directly, such
// as custom mapper.Aligner implementations) is allocation-free instead:
// a workspace accumulates each alignment's CIGAR in a reusable arena and
// core.Alignment.Cigar is a view of it, valid only until the next
// Align/AlignGlobal/EditDistance call on the same workspace — the software
// analogue of reading the accelerator's output SRAM before the next
// launch. Callers that retain such a result must copy it first
// (core.Alignment.Clone, or cigar.Cigar.Clone / CloneInto for the runs
// alone); callers that only inspect it before the next call pay nothing.
//
// # Observability and trace hooks
//
// The pipeline exposes net/http/httptrace-style hook structs so callers
// can watch every stage without wrapping the API. MapTrace (attached via
// MapperConfig.Trace) fires after seeding, after each pre-alignment
// filter decision, after each candidate alignment and once per finished
// read — the software rendition of the paper's per-stage breakdown
// (Figure 1). AlignTrace (attached with WithAlignTrace or
// Engine.SetAlignTrace) fires when an alignment obtains a pooled
// workspace (with the wait, the saturation signal of the per-vault GenASM
// units) and when it finishes (with sizes, duration and error). Hooks run
// synchronously on the hot path and the traced path performs no
// additional allocations, so metrics-backed traces can stay attached in
// production; the HTTP server does exactly that, feeding the Prometheus
// registry in internal/metrics that GET /metrics exposes.
//
// # Migrating from the pre-Engine API
//
// Aligner, Pool and the free functions remain as deprecated shims over
// Engine, so existing callers compile unchanged:
//
//	NewAligner(cfg)             ->  NewEngine(WithConfig(cfg))
//	Aligner.Align(t, q)         ->  Engine.Align(ctx, t, q)
//	NewPool(PoolConfig{...})    ->  NewEngine(WithConfig(...), WithShards(n), WithMaxWorkspaces(m))
//	Pool.AlignContext(ctx,t,q)  ->  Engine.Align(ctx, t, q)
//	EditDistance(a, b)          ->  Engine.EditDistance(ctx, a, b)
//	AlignBatch(cfg, jobs, n)    ->  Engine.AlignBatch(ctx, jobs)
//	Search(alpha, t, p, k)      ->  Engine.Search(ctx, t, p, k) or Engine.Compile(p, k)
//	Filter(region, read, k)     ->  Engine.Filter(ctx, region, read, k)
//	internal read mapping       ->  Engine.NewMapper / Engine.Map
//
// # Serving
//
// The genasm-serve command (cmd/genasm-serve) exposes one shared Engine as
// a long-running HTTP JSON service with align, batch and read-mapping
// endpoints — including POST /v1/map/stream, which accepts FASTA, FASTQ
// or NDJSON reads in the request body and streams NDJSON or SAM back with
// flush-per-record backpressure — plus bounded admission queueing (429 on
// overload), graceful shutdown, Prometheus metrics on GET /metrics,
// structured request logging and an optional private ops listener with
// pprof; see internal/server for the API.
//
// The server is multi-reference: -ref-dir serves a directory of persisted
// index files as named references (the software echo of the accelerator
// partitioning the reference across vault-local DRAM), each mmap-loaded
// lazily on first use, pinned by in-flight requests, and evicted
// least-recently-used under a resident-bytes budget. Requests name their
// reference with a "ref" field or query parameter, an admin surface under
// /v1/refs lists, pre-warms, removes and hot-reloads references without a
// restart, and admission distinguishes interactive from batch priority
// (X-Genasm-Priority) so bulk traffic is shed first under overload; see
// internal/registry for the registry itself. The underlying algorithm
// packages live in internal/ and operate on dense codes.
//
// The serving stack is resilient by construction. Request deadlines
// propagate end to end — through admission, the workspace pool and into
// the core DC loop, which polls cancellation between windows — so a
// context that expires mid-alignment returns ctx.Err() (the server turns
// it into a 504 "timeout" envelope) instead of burning a workspace.
// Every pooled alignment runs inside a recover boundary: a panic in the
// kernel surfaces as *PanicError (carrying the site and stack) rather
// than tearing the process down, and the panicking workspace is
// quarantined — dropped from the pool, visible as PoolStats.Quarantined —
// so corrupted scratch state can never serve a later request. Reference
// loads retry with backoff behind a per-reference circuit breaker, the
// server sheds batch work first in a hysteretic degraded mode, and the
// internal/faults harness injects errors, latency and panics at named
// sites for chaos testing with zero cost while disabled.
package genasm
