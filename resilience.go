package genasm

import (
	"errors"
	"fmt"

	"genasm/internal/core"
)

// PanicError reports a panic recovered at the engine's isolation boundary
// around a pooled alignment or mapping. The process survives: the
// panicking workspace was quarantined (never returned to the pool, so its
// possibly-corrupted scratch state cannot poison later requests) and its
// capacity slot is refilled by a fresh workspace on demand. Callers can
// detect quarantines with errors.As and should treat them as internal
// errors (HTTP 500), not input errors.
type PanicError struct {
	// Site labels where the panic fired ("align" for the kernel path, or
	// a fault-injection site name).
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("genasm: panic in pooled %s (workspace quarantined): %v", e.Site, e.Value)
}

// convertPanicError rewraps the internal quarantine error as the public
// PanicError at the API boundary, so callers outside the module can
// errors.As for it.
func convertPanicError(err error) error {
	var pe *core.PanicError
	if errors.As(err, &pe) {
		return &PanicError{Site: pe.Site, Value: pe.Value, Stack: pe.Stack}
	}
	return err
}
