package genasm

import (
	"context"

	"genasm/internal/pool"
)

// PoolConfig parameterizes a Pool: the alignment Config plus sizing of the
// workspace pool behind it.
//
// Deprecated: use NewEngine with WithConfig, WithShards and
// WithMaxWorkspaces.
type PoolConfig struct {
	// Config is the alignment configuration every pooled workspace uses.
	Config
	// Shards is the number of independent free lists inside the pool;
	// zero picks a default scaled to GOMAXPROCS.
	Shards int
	// MaxWorkspaces caps the number of live workspaces (the software
	// analogue of the accelerator's vault count). Alignments block once
	// the cap is reached and every workspace is busy. Zero defaults to
	// 2×GOMAXPROCS.
	MaxWorkspaces int
}

// Pool is a concurrency-safe aligner backed by a sharded workspace pool.
//
// Deprecated: Pool predates Engine and is now a thin shim over it — Engine
// serves the same calls context-first and adds Search, Filter, AlignBatch,
// Compile and read mapping behind the same pool. Use NewEngine; existing
// Pools can migrate gradually via Pool.Engine.
type Pool struct {
	e *Engine
}

// PoolStats snapshots pool activity: free-list hits, misses (workspace
// creations), workspaces currently in flight and idle, and the capacity.
type PoolStats = pool.Stats

// NewPool builds a Pool. The zero PoolConfig is the paper's default
// alignment setup with sizing scaled to GOMAXPROCS.
//
// Deprecated: use NewEngine.
func NewPool(cfg PoolConfig) (*Pool, error) {
	e, err := newEngine(cfg.Config, cfg.Shards, cfg.MaxWorkspaces)
	if err != nil {
		return nil, err
	}
	return &Pool{e: e}, nil
}

// Engine returns the Engine behind this Pool — the migration path for
// callers moving to the context-first API.
func (p *Pool) Engine() *Engine { return p.e }

// Align aligns query against text semi-globally, safely callable from any
// goroutine.
//
// Deprecated: use Engine.Align.
func (p *Pool) Align(text, query []byte) (Alignment, error) {
	return p.e.Align(context.Background(), text, query)
}

// AlignContext is Align with cancellation: if every workspace is busy and
// ctx ends before one frees up, the context error is returned.
//
// Deprecated: use Engine.Align.
func (p *Pool) AlignContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.e.Align(ctx, text, query)
}

// AlignGlobal aligns query against text end to end, safely callable from
// any goroutine.
//
// Deprecated: use Engine.AlignGlobal.
func (p *Pool) AlignGlobal(text, query []byte) (Alignment, error) {
	return p.e.AlignGlobal(context.Background(), text, query)
}

// AlignGlobalContext is AlignGlobal with cancellation.
//
// Deprecated: use Engine.AlignGlobal.
func (p *Pool) AlignGlobalContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.e.AlignGlobal(ctx, text, query)
}

// EditDistance returns the edit distance between two sequences, safely
// callable from any goroutine.
//
// Deprecated: use Engine.EditDistance.
func (p *Pool) EditDistance(a, b []byte) (int, error) {
	return p.e.EditDistance(context.Background(), a, b)
}

// Stats snapshots the underlying workspace pool counters.
//
// Deprecated: use Engine.Stats.
func (p *Pool) Stats() PoolStats { return p.e.Stats() }

// Capacity is the maximum number of concurrently running alignments.
//
// Deprecated: use Engine.Capacity.
func (p *Pool) Capacity() int { return p.e.Capacity() }

// DefaultPool returns a Pool view of the shared default engine.
//
// Deprecated: use DefaultEngine.
func DefaultPool() (*Pool, error) {
	e, err := DefaultEngine()
	if err != nil {
		return nil, err
	}
	return &Pool{e: e}, nil
}
