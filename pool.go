package genasm

import (
	"context"
	"fmt"
	"sync"

	"genasm/internal/alphabet"
	"genasm/internal/core"
	"genasm/internal/pool"
)

// PoolConfig parameterizes a Pool: the alignment Config plus sizing of the
// workspace pool behind it.
type PoolConfig struct {
	// Config is the alignment configuration every pooled workspace uses.
	Config
	// Shards is the number of independent free lists inside the pool;
	// zero picks a default scaled to GOMAXPROCS.
	Shards int
	// MaxWorkspaces caps the number of live workspaces (the software
	// analogue of the accelerator's vault count). Alignments block once
	// the cap is reached and every workspace is busy. Zero defaults to
	// 2×GOMAXPROCS.
	MaxWorkspaces int
}

// Pool is a concurrency-safe Aligner: any number of goroutines may call
// Align/AlignGlobal/EditDistance on one Pool, which checks reusable
// workspaces out of a sharded pool instead of requiring one Aligner per
// goroutine. It mirrors the accelerator's parallelism model — many
// independent GenASM units, each owning its scratch SRAMs (Section 7) —
// and is the alignment engine behind the genasm-serve HTTP server.
type Pool struct {
	cfg PoolConfig
	a   *alphabet.Alphabet
	p   *pool.Pool
}

// PoolStats snapshots pool activity: free-list hits, misses (workspace
// creations), workspaces currently in flight and idle, and the capacity.
type PoolStats = pool.Stats

// NewPool builds a Pool. The zero PoolConfig is the paper's default
// alignment setup with sizing scaled to GOMAXPROCS.
func NewPool(cfg PoolConfig) (*Pool, error) {
	coreCfg := cfg.Config.coreConfig()
	p, err := pool.New(pool.Config{
		Core:          coreCfg,
		Shards:        cfg.Shards,
		MaxWorkspaces: cfg.MaxWorkspaces,
	})
	if err != nil {
		return nil, err
	}
	return &Pool{cfg: cfg, a: coreCfg.Alphabet, p: p}, nil
}

// Align aligns query against text semi-globally (see Aligner.Align),
// safely callable from any goroutine.
func (p *Pool) Align(text, query []byte) (Alignment, error) {
	return p.AlignContext(context.Background(), text, query)
}

// AlignContext is Align with cancellation: if every workspace is busy and
// ctx ends before one frees up, the context error is returned.
func (p *Pool) AlignContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.run(ctx, text, query, false)
}

// AlignGlobal aligns query against text end to end (see
// Aligner.AlignGlobal), safely callable from any goroutine.
func (p *Pool) AlignGlobal(text, query []byte) (Alignment, error) {
	return p.AlignGlobalContext(context.Background(), text, query)
}

// AlignGlobalContext is AlignGlobal with cancellation.
func (p *Pool) AlignGlobalContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.run(ctx, text, query, true)
}

// EditDistance returns the edit distance between two sequences, safely
// callable from any goroutine.
func (p *Pool) EditDistance(a, b []byte) (int, error) {
	aln, err := p.AlignGlobal(a, b)
	if err != nil {
		return 0, err
	}
	return aln.Distance, nil
}

// Stats snapshots the underlying workspace pool counters.
func (p *Pool) Stats() PoolStats { return p.p.Stats() }

// Capacity is the maximum number of concurrently running alignments.
func (p *Pool) Capacity() int { return p.p.Config().MaxWorkspaces }

func (p *Pool) run(ctx context.Context, text, query []byte, global bool) (Alignment, error) {
	encText, err := p.a.Encode(text)
	if err != nil {
		return Alignment{}, fmt.Errorf("genasm: text: %w", err)
	}
	encQuery, err := p.a.Encode(query)
	if err != nil {
		return Alignment{}, fmt.Errorf("genasm: query: %w", err)
	}
	var out Alignment
	err = p.p.Do(ctx, func(ws *core.Workspace) error {
		var aln core.Alignment
		var alignErr error
		if global {
			aln, alignErr = ws.AlignGlobal(encText, encQuery)
		} else {
			aln, alignErr = ws.Align(encText, encQuery)
		}
		if alignErr != nil {
			return alignErr
		}
		out = alignmentFromCore(aln)
		return nil
	})
	return out, err
}

// defaultPool backs the package-level convenience functions.
var defaultPool struct {
	once sync.Once
	p    *Pool
	err  error
}

// DefaultPool returns the lazily-built package-level Pool (default DNA
// configuration) shared by the package-level convenience functions.
func DefaultPool() (*Pool, error) {
	defaultPool.once.Do(func() {
		defaultPool.p, defaultPool.err = NewPool(PoolConfig{})
	})
	return defaultPool.p, defaultPool.err
}
