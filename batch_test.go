package genasm

import (
	"errors"
	"testing"
)

func TestAlignBatchPublic(t *testing.T) {
	jobs := []BatchJob{
		{Text: []byte("CGTGA"), Query: []byte("CTGA"), Global: true},
		{Text: []byte("ACGTACGT"), Query: []byte("ACGTACGT"), Global: true},
		{Text: []byte("TTTTACGTACGTTTTT"), Query: []byte("ACGTACGT")},
	}
	res, err := AlignBatch(Config{SearchStart: true}, jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Err != nil || res[0].Alignment.Distance != 1 {
		t.Errorf("job 0: %+v", res[0])
	}
	if res[1].Err != nil || res[1].Alignment.Distance != 0 {
		t.Errorf("job 1: %+v", res[1])
	}
	if res[2].Err != nil || res[2].Alignment.Distance != 0 || res[2].Alignment.TextStart != 4 {
		t.Errorf("job 2: %+v", res[2])
	}
}

// TestAlignBatchPublicInvalidLetters pins the per-job error contract: one
// unencodable job is reported in its own BatchResult.Err (as a typed
// *AlphabetError) and the rest of the batch still aligns.
func TestAlignBatchPublicInvalidLetters(t *testing.T) {
	jobs := []BatchJob{
		{Text: []byte("ACGT"), Query: []byte("ACNX")},
		{Text: []byte("CGTGA"), Query: []byte("CTGA"), Global: true},
	}
	res, err := AlignBatch(Config{}, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Fatal("invalid letters should fail the job")
	}
	var ae *AlphabetError
	if !errors.As(res[0].Err, &ae) {
		t.Fatalf("job 0 error %v is not an *AlphabetError", res[0].Err)
	}
	if res[1].Err != nil || res[1].Alignment.Distance != 1 {
		t.Errorf("healthy job poisoned by its neighbour: %+v", res[1])
	}
}

func TestAlignBatchPublicEmpty(t *testing.T) {
	res, err := AlignBatch(Config{}, nil, 4)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestAlignBatchMatchesSingle(t *testing.T) {
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("ACGGATCGATTACAGGCTTAACGGATCCTAGG")
	query := []byte("ACGGATCGATTACAGGCTTAACGGATCCTAGG")
	query[10] = 'T'
	want, err := al.AlignGlobal(text, query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignBatch(Config{}, []BatchJob{{Text: text, Query: query, Global: true}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Alignment.CIGAR != want.CIGAR {
		t.Fatalf("batch %s vs single %s", res[0].Alignment.CIGAR, want.CIGAR)
	}
}
