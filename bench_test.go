package genasm

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 10). Each benchmark measures the per-item
// cost of the workload the figure is about; `cmd/genasm-bench` prints the
// corresponding full tables (paper rows next to measured/modelled values).
//
// Run all with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genasm/internal/alphabet"
	"genasm/internal/cigar"
	"genasm/internal/core"
	"genasm/internal/dp"
	"genasm/internal/filter"
	"genasm/internal/gact"
	"genasm/internal/hw"
	"genasm/internal/index"
	"genasm/internal/mapper"
	"genasm/internal/metrics"
	"genasm/internal/myers"
	"genasm/internal/seq"
	"genasm/internal/simulate"
)

// metricsMapTrace builds a MapTrace backed by live metric instruments —
// the same shape the HTTP server attaches — so traced benchmarks and the
// alloc-budget test measure the production observability cost, not a
// no-op stub.
func metricsMapTrace() *MapTrace {
	r := metrics.New()
	seeds := r.Counter("seeds_total", "seed hits")
	cands := r.Counter("candidates_total", "candidates")
	filtered := r.Counter("filtered_total", "filter rejections")
	accepted := r.Counter("accepted_total", "filter passes")
	reads := r.Counter("reads_total", "reads")
	mapped := r.Counter("mapped_total", "mapped reads")
	stage := r.HistogramVec("stage_seconds", "stage time", nil, "stage")
	seedH, filterH, alignH := stage.With("seed"), stage.With("filter"), stage.With("align")
	readH := r.Histogram("read_seconds", "read time", nil)
	return &MapTrace{
		SeedingDone: func(s, c int, d time.Duration) {
			seeds.Add(uint64(s))
			cands.Add(uint64(c))
			seedH.Observe(d.Seconds())
		},
		FilterDone: func(ok bool, d time.Duration) {
			if ok {
				accepted.Inc()
			} else {
				filtered.Inc()
			}
			filterH.Observe(d.Seconds())
		},
		AlignDone: func(ok bool, d time.Duration) { alignH.Observe(d.Seconds()) },
		ReadDone: func(c, f, a int, ok bool, d time.Duration) {
			reads.Inc()
			if ok {
				mapped.Inc()
			}
			readH.Observe(d.Seconds())
		},
	}
}

// newBenchMapper builds the GenASM-based mapping pipeline used by the
// Figure 11 benchmark (indexing happens here, outside the timed loop).
func newBenchMapper(b *testing.B, genome []byte) *mapper.Mapper {
	b.Helper()
	m, err := mapper.New(genome, mapper.Config{
		SeedK:     15,
		ErrorRate: 0.05,
		Filter:    filter.GenASMDC{},
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchCase builds one (region, read) pair for a profile.
func benchCase(b *testing.B, p simulate.Profile, salt uint64) (region, read []byte) {
	b.Helper()
	rng := rand.New(rand.NewPCG(2020, salt))
	genome := seq.Random(rng, p.ReadLen*3+4000)
	reads, err := simulate.Reads(rng, genome, 1, p, false)
	if err != nil {
		b.Fatal(err)
	}
	r := reads[0]
	return simulate.CandidateRegion(genome, r.Pos, len(r.Seq), p.ErrorRate), r.Seq
}

// BenchmarkTable1AreaPower exercises the Table 1 area/power model.
func BenchmarkTable1AreaPower(b *testing.B) {
	cfg := hw.Default()
	for i := 0; i < b.N; i++ {
		total := cfg.Total()
		if total.AreaMM2 < 10 {
			b.Fatal("model broke")
		}
	}
}

// BenchmarkFig9LongReadAlignment measures the Figure 9 workload: aligning
// one long read per dataset, GenASM vs the DP software baseline.
func BenchmarkFig9LongReadAlignment(b *testing.B) {
	for pi, p := range simulate.LongReadProfiles {
		region, read := benchCase(b, p, uint64(pi))
		k := int(float64(p.ReadLen)*p.ErrorRate) + 8
		b.Run("GenASM/"+p.Name, func(b *testing.B) {
			ws := core.MustNew(core.Config{FindFirstWindowStart: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Align(region, read); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("DPBaseline/"+p.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dp.Align(region, read, cigar.Minimap2, dp.Fit, k+16)
			}
		})
	}
}

// BenchmarkFig10ShortReadAlignment measures the Figure 10 workload.
func BenchmarkFig10ShortReadAlignment(b *testing.B) {
	for pi, p := range simulate.ShortReadProfiles {
		region, read := benchCase(b, p, uint64(10+pi))
		k := int(float64(p.ReadLen)*p.ErrorRate) + 8
		b.Run("GenASM/"+p.Name, func(b *testing.B) {
			ws := core.MustNew(core.Config{FindFirstWindowStart: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Align(region, read); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("DPBaseline/"+p.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dp.Align(region, read, cigar.BWAMEM, dp.Fit, k+16)
			}
		})
	}
}

// BenchmarkFig11Pipeline measures the end-to-end mapping cost per read
// with the GenASM alignment step (Figure 11's "with GenASM" pipelines).
func BenchmarkFig11Pipeline(b *testing.B) {
	rng := rand.New(rand.NewPCG(2021, 0))
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(200000))
	reads, err := simulate.Reads(rng, genome, 50, simulate.Illumina250, false)
	if err != nil {
		b.Fatal(err)
	}
	// mapper.New indexes the genome; excluded from the timed loop.
	m := newBenchMapper(b, genome)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reads[i%len(reads)]
		if _, err := m.MapRead(r.Seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12VsGACTLong measures GenASM vs GACT software on long
// sequences (Figure 12's axis).
func BenchmarkFig12VsGACTLong(b *testing.B) {
	for _, length := range []int{1000, 5000, 10000} {
		rng := rand.New(rand.NewPCG(2022, uint64(length)))
		text := seq.Random(rng, length+length*15/100+16)
		read := mutateBench(rng, text[:length], 0.15)
		b.Run(fmt.Sprintf("GenASM/%dbp", length), func(b *testing.B) {
			ws := core.MustNew(core.Config{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Align(text, read); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("GACT/%dbp", length), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gact.Align(text, read, gact.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13VsGACTShort is Figure 13's short-read axis.
func BenchmarkFig13VsGACTShort(b *testing.B) {
	for _, length := range []int{100, 200, 300} {
		rng := rand.New(rand.NewPCG(2023, uint64(length)))
		text := seq.Random(rng, length+length*5/100+16)
		read := mutateBench(rng, text[:length], 0.05)
		b.Run(fmt.Sprintf("GenASM/%dbp", length), func(b *testing.B) {
			ws := core.MustNew(core.Config{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Align(text, read); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("GACT/%dbp", length), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gact.Align(text, read, gact.Config{TileSize: 64, Overlap: 24}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14EditDistance measures the Figure 14 edit distance
// workload: Myers (Edlib's algorithm) vs GenASM on long pairs.
func BenchmarkFig14EditDistance(b *testing.B) {
	for _, sim := range []float64{0.90, 0.99} {
		rng := rand.New(rand.NewPCG(2024, uint64(sim*100)))
		a := seq.Random(rng, 20000)
		pair := mutateBench(rng, a, 1-sim)
		b.Run(fmt.Sprintf("Myers/sim%.0f%%", sim*100), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := myers.Distance(a, pair, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("GenASM/sim%.0f%%", sim*100), func(b *testing.B) {
			ws := core.MustNew(core.Config{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.EditDistance(a, pair); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShoujiFilter measures the Section 10.3 filtering workload for
// every implemented filter at the 100bp/E=5 dataset shape.
func BenchmarkShoujiFilter(b *testing.B) {
	rng := rand.New(rand.NewPCG(2025, 0))
	pairs := filter.GeneratePairs(rng, 64, 100, 5, dp.EditDistance)
	for _, f := range []filter.Filter{filter.GenASMDC{}, filter.Shouji{}, filter.SHD{}, filter.BaseCount{}} {
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := f.Accept(p.Ref, p.Read, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkASAPRange measures GenASM edit distance at ASAP's sequence
// lengths (Section 10.4).
func BenchmarkASAPRange(b *testing.B) {
	for _, length := range []int{64, 320} {
		rng := rand.New(rand.NewPCG(2026, uint64(length)))
		a := seq.Random(rng, length)
		pair := mutateBench(rng, a, 0.05)
		b.Run(fmt.Sprintf("%dbp", length), func(b *testing.B) {
			ws := core.MustNew(core.Config{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.EditDistance(a, pair); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWindowing measures the Section 10.5 windowing ablation
// in software: windowed GenASM vs the non-windowed multi-word scan, on a
// 2 kbp read (the unwindowed variant is quadratic in read length and
// already orders of magnitude slower here).
func BenchmarkAblationWindowing(b *testing.B) {
	region, read := benchCase(b, simulate.Profile{
		Name: "2kbp-10%", ReadLen: 2000, ErrorRate: 0.10,
		SubFrac: 0.25, InsFrac: 0.25, DelFrac: 0.50,
	}, 99)
	b.Run("Windowed", func(b *testing.B) {
		ws := core.MustNew(core.Config{FindFirstWindowStart: true})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Align(region, read); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Unwindowed", func(b *testing.B) {
		f := filter.GenASMDC{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.Accept(region, read, 220); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptive measures the software-only adaptive error
// level optimization (DESIGN.md Section 5).
func BenchmarkAblationAdaptive(b *testing.B) {
	region, read := benchCase(b, simulate.Illumina150, 98)
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"Adaptive", core.Config{}},
		{"AllLevels", core.Config{NoAdaptive: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			ws := core.MustNew(cfg.c)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Align(region, read); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlign is the kernel-comparison benchmark the CI regression
// gate tracks: the core Align hot path (DC + TB, no encoding, no pool) on
// a short and a long read, under the baseline per-edge-store kernel and
// the Scrooge SENE/DENT kernel.
func BenchmarkAlign(b *testing.B) {
	cases := []struct {
		name             string
		refLen, readLen  int
		subs, inss, dels int
	}{
		{"short100bp", 120, 100, 3, 1, 1},
		{"long10kbp", 11500, 10000, 500, 250, 250},
	}
	for _, kern := range []core.Kernel{core.KernelBaseline, core.KernelScrooge} {
		for _, c := range cases {
			b.Run(fmt.Sprintf("kernel=%s/%s", kern, c.name), func(b *testing.B) {
				rng := rand.New(rand.NewPCG(77, uint64(c.readLen)))
				ref := seq.Random(rng, c.refLen)
				read := append([]byte(nil), ref[:c.readLen]...)
				read = mutateBench(rng, read, float64(c.subs+c.inss+c.dels)/float64(c.readLen))
				ws := core.MustNew(core.Config{Kernel: kern})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ws.Align(ref, read); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMapper is the end-to-end mapping benchmark the CI regression
// gate tracks: the public Mapper (seeding + filtering + GenASM alignment +
// pool) mapping short reads against an indexed reference.
func BenchmarkMapper(b *testing.B) {
	rng := rand.New(rand.NewPCG(2030, 0))
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(200000))
	reads, err := simulate.Reads(rng, genome, 50, simulate.Illumina250, false)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	m, err := e.NewMapper(alphabetDecode(genome), MapperConfig{SeedParams: SeedParams{SeedK: 15}, ErrorRate: 0.05, Prefilter: true})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Decode to letters outside the timed loop: input preparation is the
	// caller's cost, and keeping it out lets the allocs/op gate measure
	// the mapping pipeline itself.
	letters := make([][]byte, len(reads))
	for i, r := range reads {
		letters[i] = alphabetDecode(r.Seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MapRead(ctx, letters[i%len(letters)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperTraced measures the observability overhead on the
// BenchmarkMapper workload: the same pipeline untraced and with the
// metrics-backed MapTrace the HTTP server attaches. The acceptance gate
// keeps Traced within ~2% of Untraced.
func BenchmarkMapperTraced(b *testing.B) {
	for _, tc := range []struct {
		name  string
		trace *MapTrace
	}{
		{"Untraced", nil},
		{"Traced", metricsMapTrace()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2030, 0))
			genome := seq.Genome(rng, seq.DefaultGenomeConfig(200000))
			reads, err := simulate.Reads(rng, genome, 50, simulate.Illumina250, false)
			if err != nil {
				b.Fatal(err)
			}
			e, err := NewEngine()
			if err != nil {
				b.Fatal(err)
			}
			m, err := e.NewMapper(alphabetDecode(genome), MapperConfig{
				SeedParams: SeedParams{SeedK: 15}, ErrorRate: 0.05, Prefilter: true, Trace: tc.trace,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			letters := make([][]byte, len(reads))
			for i, r := range reads {
				letters[i] = alphabetDecode(r.Seq)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.MapRead(ctx, letters[i%len(letters)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStreamJobs builds the 1k-job workload BenchmarkAlignStream and the
// CI regression gate track: short-read-sized global alignments.
func benchStreamJobs(b *testing.B) []BatchJob {
	b.Helper()
	rng := rand.New(rand.NewPCG(2031, 0))
	jobs := make([]BatchJob, 1000)
	for i := range jobs {
		enc := seq.Random(rng, 150)
		jobs[i] = BatchJob{
			Text:   alphabetDecode(enc),
			Query:  alphabetDecode(mutateBench(rng, enc, 0.05)),
			Global: true,
		}
	}
	return jobs
}

// BenchmarkAlignStream compares the iterator stream core against the
// slice batch API (itself a wrapper over the stream) on a 1k-job
// workload: the streaming overhead — channel hops, the ordered-mode
// reorder buffer — must stay within 10% of AlignBatch, and Unordered is
// the throughput ceiling. One op is the whole 1k-job workload.
func BenchmarkAlignStream(b *testing.B) {
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	jobs := benchStreamJobs(b)
	ctx := context.Background()
	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, err := e.AlignBatch(ctx, jobs)
			if err != nil {
				b.Fatal(err)
			}
			if results[0].Err != nil {
				b.Fatal(results[0].Err)
			}
		}
	})
	b.Run("Stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for res := range e.AlignStream(ctx, slices.Values(jobs)) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				n++
			}
			if n != len(jobs) {
				b.Fatalf("stream emitted %d results", n)
			}
		}
	})
	b.Run("StreamUnordered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for res := range e.AlignStream(ctx, slices.Values(jobs), Unordered()) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				n++
			}
			if n != len(jobs) {
				b.Fatalf("stream emitted %d results", n)
			}
		}
	})
}

// BenchmarkPublicAPI measures the letter-level public Align path.
func BenchmarkPublicAPI(b *testing.B) {
	al, err := NewAligner(Config{})
	if err != nil {
		b.Fatal(err)
	}
	text := []byte("TTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAGTTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAG")
	query := []byte("TTACGGATCGTTGCAATCGGATCGATTACAGGCTTAACGGATCCTAGGACCAG")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := al.Align(text, query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolThroughput is the serving-path baseline: concurrent
// alignment throughput through the shared Pool at 1/2/4/8 workers against
// the sequential one-Aligner loop. This is the software rendition of the
// paper's vault-count scaling (Section 10.5: throughput scales with the
// number of GenASM units); speedups need as many cores as workers.
func BenchmarkPoolThroughput(b *testing.B) {
	rng := rand.New(rand.NewPCG(2027, 1))
	const nPairs = 64
	texts := make([][]byte, nPairs)
	queries := make([][]byte, nPairs)
	for i := range texts {
		enc := seq.Random(rng, 1000)
		texts[i] = alphabetDecode(enc)
		queries[i] = alphabetDecode(mutateBench(rng, enc, 0.05))
	}

	b.Run("Sequential", func(b *testing.B) {
		al, err := NewAligner(Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := al.AlignGlobal(texts[i%nPairs], queries[i%nPairs]); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Pool/workers=%d", workers), func(b *testing.B) {
			p, err := NewPool(PoolConfig{MaxWorkspaces: workers, Shards: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1) - 1)
						if i >= b.N {
							return
						}
						if _, err := p.AlignGlobal(texts[i%nPairs], queries[i%nPairs]); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkCompiledSearch quantifies the CompiledPattern amortization win:
// one pattern scanning many short records (the adapter-trimming shape of
// repeated-pattern scanning), per-call Engine.Search vs the compiled form.
// Per-call Search re-encodes the pattern and regenerates its bitmasks —
// for the 256-letter Bytes alphabet, a full mask-table rebuild — on every
// record; Compile does that work once.
func BenchmarkCompiledSearch(b *testing.B) {
	rng := rand.New(rand.NewPCG(2028, 0))
	e, err := NewEngine(WithAlphabet(Bytes))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// 64 records of 160 bytes, each containing one mutated copy of the
	// 96-byte pattern.
	pattern := make([]byte, 96)
	for i := range pattern {
		pattern[i] = byte(32 + rng.IntN(95))
	}
	const nTexts = 64
	texts := make([][]byte, nTexts)
	for i := range texts {
		tx := make([]byte, 160)
		for j := range tx {
			tx[j] = byte(32 + rng.IntN(95))
		}
		copy(tx[rng.IntN(60):], pattern)
		tx[80] = '!'
		texts[i] = tx
	}
	const k = 2

	b.Run("PerCall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(ctx, texts[i%nTexts], pattern, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Compiled", func(b *testing.B) {
		cp, err := e.Compile(pattern, k)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cp.Search(ctx, texts[i%nTexts]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// alphabetDecode maps dense DNA codes back to letters for the public API.
func alphabetDecode(codes []byte) []byte {
	return alphabet.DNA.Decode(codes)
}

func mutateBench(rng *rand.Rand, s []byte, errRate float64) []byte {
	out := append([]byte(nil), s...)
	edits := int(float64(len(s)) * errRate)
	for e := 0; e < edits; e++ {
		switch rng.IntN(3) {
		case 0:
			p := rng.IntN(len(out))
			out[p] = (out[p] + byte(1+rng.IntN(3))) % 4
		case 1:
			p := rng.IntN(len(out) + 1)
			out = append(out[:p], append([]byte{byte(rng.IntN(4))}, out[p:]...)...)
		default:
			if len(out) > 1 {
				p := rng.IntN(len(out))
				out = append(out[:p], out[p+1:]...)
			}
		}
	}
	return out
}

// benchIndexConfigs enumerates the persistent-index backends with the
// canonical build parameters `genasm index build` exposes; the sub-bench
// names ("backend=hash", ...) are shared by the three index benchmarks so
// benchstat lines up build, load and lookup per backend.
var benchIndexConfigs = []struct {
	name string
	cfg  RefIndexConfig
}{
	{"backend=hash", RefIndexConfig{Backend: IndexHash, SeedParams: SeedParams{SeedK: 15}}},
	{"backend=minimizer", RefIndexConfig{Backend: IndexMinimizer, SeedParams: SeedParams{SeedK: 15, MinimizerW: 10}}},
	{"backend=suffixarray", RefIndexConfig{Backend: IndexSuffixArray, SeedParams: SeedParams{SeedK: 15}}},
}

// benchIndexRef builds the 200kb reference the index benchmarks share
// (same genome shape as BenchmarkMapper).
func benchIndexRef() []byte {
	rng := rand.New(rand.NewPCG(2032, 0))
	return alphabetDecode(seq.Genome(rng, seq.DefaultGenomeConfig(200000)))
}

// BenchmarkIndexBuild measures offline index construction per backend —
// the cost `genasm index build` pays once so later boots can skip it. The
// BenchmarkIndexLoad/IndexBuild ratio is the cold-start win BENCHMARKS.md
// tracks.
func BenchmarkIndexBuild(b *testing.B) {
	ref := benchIndexRef()
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range benchIndexConfigs {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ri, err := e.BuildRefIndex(ref, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				ri.Close()
			}
		})
	}
}

// BenchmarkIndexLoad measures cold start from a prebuilt index file: open,
// validate (CRC + digest) and mmap a ref.gidx into a ready-to-seed index.
func BenchmarkIndexLoad(b *testing.B) {
	ref := benchIndexRef()
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range benchIndexConfigs {
		b.Run(tc.name, func(b *testing.B) {
			ri, err := e.BuildRefIndex(ref, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "ref.gidx")
			if err := ri.WriteFile(path); err != nil {
				b.Fatal(err)
			}
			ri.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lri, err := LoadRefIndex(path)
				if err != nil {
					b.Fatal(err)
				}
				lri.Close()
			}
		})
	}
}

// BenchmarkSeedLookup isolates the seeding step — CandidateLocationsInto
// over simulated short reads — per backend, on both the in-memory built
// form (mem) and the mmap-loaded on-disk form (mmap). The pair guards the
// promise that loading an index from disk does not slow the hot path.
func BenchmarkSeedLookup(b *testing.B) {
	rng := rand.New(rand.NewPCG(2033, 0))
	genome := seq.Genome(rng, seq.DefaultGenomeConfig(200000))
	ref := alphabetDecode(genome)
	reads, err := simulate.Reads(rng, genome, 50, simulate.Illumina100, false)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range benchIndexConfigs {
		for _, storage := range []string{"mem", "mmap"} {
			b.Run(tc.name+"/"+storage, func(b *testing.B) {
				ri, err := e.BuildRefIndex(ref, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer ri.Close()
				idx := ri.idx
				if storage == "mmap" {
					path := filepath.Join(b.TempDir(), "ref.gidx")
					if err := ri.WriteFile(path); err != nil {
						b.Fatal(err)
					}
					lri, err := LoadRefIndex(path)
					if err != nil {
						b.Fatal(err)
					}
					defer lri.Close()
					idx = lri.idx
				}
				var s index.SeedScratch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx.CandidateLocationsInto(&s, reads[i%len(reads)].Seq, 8)
				}
			})
		}
	}
}
