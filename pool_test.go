package genasm

import (
	"strings"
	"sync"
	"testing"
)

// poolTestPairs builds deterministic letter-space pairs with known edits.
func poolTestPairs() (texts, queries []string) {
	base := strings.Repeat("ACGTTGCAATCGGATCGATTACAGGCTTAACG", 8)
	for i := 0; i < 50; i++ {
		text := base[:len(base)-i]
		q := []byte(text)
		for e := 0; e <= i%7; e++ {
			pos := (e*31 + i*17) % len(q)
			q[pos] = "ACGT"[(strings.IndexByte("ACGT", q[pos])+1)%4]
		}
		texts = append(texts, text)
		queries = append(queries, string(q))
	}
	return texts, queries
}

// TestPoolMatchesAligner pins that the concurrency-safe Pool produces
// exactly the single-threaded Aligner's output, concurrently.
func TestPoolMatchesAligner(t *testing.T) {
	texts, queries := poolTestPairs()
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Alignment, len(texts))
	for i := range texts {
		if want[i], err = al.AlignGlobal([]byte(texts[i]), []byte(queries[i])); err != nil {
			t.Fatal(err)
		}
	}

	p, err := NewPool(PoolConfig{MaxWorkspaces: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(texts); i += workers {
				got, err := p.AlignGlobal([]byte(texts[i]), []byte(queries[i]))
				if err != nil {
					t.Error(err)
					return
				}
				if got.CIGAR != want[i].CIGAR || got.Distance != want[i].Distance ||
					got.Matches != want[i].Matches {
					t.Errorf("pair %d: pool (%s, %d) != aligner (%s, %d)",
						i, got.CIGAR, got.Distance, want[i].CIGAR, want[i].Distance)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := p.Stats(); st.InFlight != 0 {
		t.Errorf("in-flight=%d after all alignments, want 0", st.InFlight)
	}
}

func TestPoolSemiGlobal(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	al, err := NewAligner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("TTACGGATCGTTGCAATCGGATCGATTACAGG")
	query := []byte("TTACGGATCGTTGCAATCGG")
	want, err := al.Align(text, query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Align(text, query)
	if err != nil {
		t.Fatal(err)
	}
	if got.CIGAR != want.CIGAR || got.TextEnd != want.TextEnd {
		t.Errorf("pool %+v != aligner %+v", got, want)
	}
}

func TestPoolRejectsBadInput(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Align([]byte("ACXT"), []byte("ACGT")); err == nil {
		t.Error("expected encode error for bad text")
	}
	if _, err := p.Align([]byte("ACGT"), nil); err == nil {
		t.Error("expected error for empty query")
	}
	if _, err := NewPool(PoolConfig{Config: Config{WindowSize: 1}}); err == nil {
		t.Error("expected error for invalid window size")
	}
}

// TestEditDistanceConcurrent exercises the package-level convenience,
// which now shares the default pool, from many goroutines.
func TestEditDistanceConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				d, err := EditDistance([]byte("GGCTATAATGCGGGG"), []byte("GGCTATATGCGGG"))
				if err != nil {
					t.Error(err)
					return
				}
				if d != 2 {
					t.Errorf("distance=%d, want 2", d)
				}
			}
		}()
	}
	wg.Wait()
	p, err := DefaultPool()
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.InFlight != 0 {
		t.Errorf("default pool in-flight=%d, want 0", st.InFlight)
	}
}
