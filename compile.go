package genasm

import (
	"context"
	"sync"

	"genasm/internal/bitap"
)

// CompiledPattern is a pattern pre-processed for repeated approximate
// matching: the Bitap pattern bitmasks (Algorithm 1, line 4) and the
// multi-word scratch rows are built once at Compile time and reused across
// every Search/Filter call, instead of being rebuilt per invocation — the
// hot-path win for scanning many texts or reads against one pattern.
//
// A CompiledPattern is safe for concurrent use: the immutable bitmasks are
// shared, while each in-flight call checks a private scratch clone out of
// an internal pool.
type CompiledPattern struct {
	e        *Engine
	pattern  []byte
	maxEdits int

	searchers sync.Pool // *bitap.MultiWord clones sharing the masks
}

// Compile pre-processes pattern for repeated matching with at most maxEdits
// edits under the engine's alphabet.
func (e *Engine) Compile(pattern []byte, maxEdits int) (*CompiledPattern, error) {
	encPattern, err := e.encode("pattern", pattern)
	if err != nil {
		return nil, err
	}
	proto, err := bitap.NewMultiWord(e.a, encPattern, maxEdits)
	if err != nil {
		return nil, err
	}
	cp := &CompiledPattern{
		e:        e,
		pattern:  append([]byte(nil), pattern...),
		maxEdits: maxEdits,
	}
	// The prototype never leaves this closure: handing it out would let a
	// caller mutate it (SetEndPadding) while a concurrent pool miss runs
	// Clone against it. Cloning from the immutable prototype is race-free.
	cp.searchers.New = func() any { return proto.Clone() }
	return cp, nil
}

// Pattern returns a copy of the compiled pattern (letters).
func (cp *CompiledPattern) Pattern() []byte { return append([]byte(nil), cp.pattern...) }

// MaxEdits returns the edit distance threshold the pattern was compiled for.
func (cp *CompiledPattern) MaxEdits() int { return cp.maxEdits }

// Search finds all positions where the compiled pattern occurs in text with
// at most MaxEdits edits, in ascending position order.
func (cp *CompiledPattern) Search(ctx context.Context, text []byte) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	encText, err := cp.e.encode("text", text)
	if err != nil {
		return nil, err
	}
	mw := cp.searchers.Get().(*bitap.MultiWord)
	defer cp.searchers.Put(mw)
	mw.SetEndPadding(false)
	return ascendingMatches(mw.Search(encText)), nil
}

// Filter reports whether the compiled pattern (as a read) may be within
// MaxEdits edits of some position in region — Engine.Filter with the
// pattern-side pre-processing amortized.
func (cp *CompiledPattern) Filter(ctx context.Context, region []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	encRegion, err := cp.e.encode("region", region)
	if err != nil {
		return false, err
	}
	mw := cp.searchers.Get().(*bitap.MultiWord)
	defer cp.searchers.Put(mw)
	mw.SetEndPadding(true)
	return mw.Distance(encRegion) <= cp.maxEdits, nil
}
