package genasm

// This file is the one home of the pre-Engine compatibility surface. Every
// identifier in it is a thin shim over Engine (PR 2's API redesign) kept so
// pre-Engine callers keep compiling; none of them gain features anymore.
//
// Scheduled removal: these shims will be deleted in the next major API
// revision. New code must use NewEngine and the Engine methods; existing
// callers can migrate gradually (see the README's "Migrating from the
// pre-Engine API" table, and Pool.Engine for an in-place bridge).

import (
	"context"
)

// Aligner aligns queries against texts with the GenASM algorithms.
//
// Deprecated: Aligner predates Engine, which serves the same calls
// context-first and safely from any number of goroutines. Use NewEngine;
// an Aligner is now a single-workspace Engine.
type Aligner struct {
	e *Engine
}

// NewAligner builds an Aligner.
//
// Deprecated: use NewEngine.
func NewAligner(cfg Config) (*Aligner, error) {
	e, err := newEngine(cfg, 1, 1)
	if err != nil {
		return nil, err
	}
	return &Aligner{e: e}, nil
}

// Align aligns query against text semi-globally (see Engine.Align).
//
// Deprecated: use Engine.Align.
func (al *Aligner) Align(text, query []byte) (Alignment, error) {
	return al.e.Align(context.Background(), text, query)
}

// AlignGlobal aligns query against text end to end (see
// Engine.AlignGlobal).
//
// Deprecated: use Engine.AlignGlobal.
func (al *Aligner) AlignGlobal(text, query []byte) (Alignment, error) {
	return al.e.AlignGlobal(context.Background(), text, query)
}

// EditDistance returns the edit distance between two sequences of
// arbitrary length (see Engine.EditDistance).
//
// Deprecated: use Engine.EditDistance.
func (al *Aligner) EditDistance(a, b []byte) (int, error) {
	return al.e.EditDistance(context.Background(), a, b)
}

// EditDistance is a convenience wrapper: DNA alphabet, default
// configuration, scratch drawn from the shared default engine, safe for
// concurrent use.
//
// Deprecated: use Engine.EditDistance on a long-lived Engine (DefaultEngine
// returns the shared default one).
func EditDistance(a, b []byte) (int, error) {
	e, err := DefaultEngine()
	if err != nil {
		return 0, err
	}
	return e.EditDistance(context.Background(), a, b)
}

// PoolConfig parameterizes a Pool: the alignment Config plus sizing of the
// workspace pool behind it.
//
// Deprecated: use NewEngine with WithConfig, WithShards and
// WithMaxWorkspaces.
type PoolConfig struct {
	// Config is the alignment configuration every pooled workspace uses.
	Config
	// Shards is the number of independent free lists inside the pool;
	// zero picks a default scaled to GOMAXPROCS.
	Shards int
	// MaxWorkspaces caps the number of live workspaces (the software
	// analogue of the accelerator's vault count). Alignments block once
	// the cap is reached and every workspace is busy. Zero defaults to
	// 2×GOMAXPROCS.
	MaxWorkspaces int
}

// Pool is a concurrency-safe aligner backed by a sharded workspace pool.
//
// Deprecated: Pool predates Engine and is now a thin shim over it — Engine
// serves the same calls context-first and adds Search, Filter, AlignBatch,
// Compile and read mapping behind the same pool. Use NewEngine; existing
// Pools can migrate gradually via Pool.Engine.
type Pool struct {
	e *Engine
}

// NewPool builds a Pool. The zero PoolConfig is the paper's default
// alignment setup with sizing scaled to GOMAXPROCS.
//
// Deprecated: use NewEngine.
func NewPool(cfg PoolConfig) (*Pool, error) {
	e, err := newEngine(cfg.Config, cfg.Shards, cfg.MaxWorkspaces)
	if err != nil {
		return nil, err
	}
	return &Pool{e: e}, nil
}

// Engine returns the Engine behind this Pool — the migration path for
// callers moving to the context-first API.
func (p *Pool) Engine() *Engine { return p.e }

// Align aligns query against text semi-globally, safely callable from any
// goroutine.
//
// Deprecated: use Engine.Align.
func (p *Pool) Align(text, query []byte) (Alignment, error) {
	return p.e.Align(context.Background(), text, query)
}

// AlignContext is Align with cancellation: if every workspace is busy and
// ctx ends before one frees up, the context error is returned.
//
// Deprecated: use Engine.Align.
func (p *Pool) AlignContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.e.Align(ctx, text, query)
}

// AlignGlobal aligns query against text end to end, safely callable from
// any goroutine.
//
// Deprecated: use Engine.AlignGlobal.
func (p *Pool) AlignGlobal(text, query []byte) (Alignment, error) {
	return p.e.AlignGlobal(context.Background(), text, query)
}

// AlignGlobalContext is AlignGlobal with cancellation.
//
// Deprecated: use Engine.AlignGlobal.
func (p *Pool) AlignGlobalContext(ctx context.Context, text, query []byte) (Alignment, error) {
	return p.e.AlignGlobal(ctx, text, query)
}

// EditDistance returns the edit distance between two sequences, safely
// callable from any goroutine.
//
// Deprecated: use Engine.EditDistance.
func (p *Pool) EditDistance(a, b []byte) (int, error) {
	return p.e.EditDistance(context.Background(), a, b)
}

// Stats snapshots the underlying workspace pool counters.
//
// Deprecated: use Engine.Stats.
func (p *Pool) Stats() PoolStats { return p.e.Stats() }

// Capacity is the maximum number of concurrently running alignments.
//
// Deprecated: use Engine.Capacity.
func (p *Pool) Capacity() int { return p.e.Capacity() }

// DefaultPool returns a Pool view of the shared default engine.
//
// Deprecated: use DefaultEngine.
func DefaultPool() (*Pool, error) {
	e, err := DefaultEngine()
	if err != nil {
		return nil, err
	}
	return &Pool{e: e}, nil
}

// Search finds all positions where pattern occurs in text with at most
// maxEdits edits using the shared default engine for alpha.
//
// Deprecated: use Engine.Search, which is context-aware and respects the
// engine's configuration; or Compile the pattern once when it scans many
// texts.
func Search(alpha Alphabet, text, pattern []byte, maxEdits int) ([]Match, error) {
	e, err := defaultEngine(alpha)
	if err != nil {
		return nil, err
	}
	return e.Search(context.Background(), text, pattern, maxEdits)
}

// Filter reports whether read may be within maxEdits edits of some position
// in region, using the shared default DNA engine.
//
// Deprecated: use Engine.Filter, which is context-aware, respects the
// engine's alphabet instead of hardcoding DNA, and reuses pooled scratch.
func Filter(region, read []byte, maxEdits int) (bool, error) {
	e, err := defaultEngine(DNA)
	if err != nil {
		return false, err
	}
	return e.Filter(context.Background(), region, read, maxEdits)
}

// AlignBatch aligns many pairs in parallel with a transient engine sized to
// workers (workers <= 0 uses the default sizing). Results are in job order;
// per-job failures, including encode failures, are reported in
// BatchResult.Err rather than aborting the batch.
//
// Deprecated: use Engine.AlignBatch, which is context-aware and draws from
// a long-lived engine's workspace pool instead of building workspaces per
// call — or Engine.AlignStream for bounded-memory job streams.
func AlignBatch(cfg Config, jobs []BatchJob, workers int) ([]BatchResult, error) {
	e, err := newEngine(cfg, 0, workers)
	if err != nil {
		return nil, err
	}
	return e.AlignBatch(context.Background(), jobs)
}
