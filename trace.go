package genasm

import (
	"time"

	"genasm/internal/mapper"
)

// MapTrace is a set of hooks run at each stage of the read-mapping
// pipeline — the net/http/httptrace analogue for mapping, and the software
// rendition of the paper's per-pipeline-stage breakdown (seeding,
// pre-alignment filtering, alignment; Figure 1). Attach one via
// MapperConfig.Trace.
//
// Any hook may be nil. Hooks run synchronously on the mapping goroutine
// and must not block; a shared Mapper calls them concurrently from many
// goroutines, so implementations must be concurrency-safe (e.g. atomic
// metric updates). The traced hot path performs no additional allocations,
// so production metrics can stay attached without disturbing the
// pipeline's allocation budgets.
type MapTrace struct {
	// SeedingDone runs after the seeding step of one strand scan: seeds
	// is the total number of seed hits voting for the returned candidate
	// locations, candidates how many locations were produced, d the time
	// spent seeding. Called up to twice per read (forward, then — unless
	// a confident hit ended the read early — reverse complement).
	SeedingDone func(seeds, candidates int, d time.Duration)
	// FilterDone runs after the pre-alignment filter judged one candidate
	// region; accepted reports whether the candidate survived to the
	// alignment step. Not called when the pipeline has no filter.
	FilterDone func(accepted bool, d time.Duration)
	// AlignDone runs after the alignment step finished one candidate
	// region; ok reports whether alignment produced a result (false when
	// the candidate blew the window error budget).
	AlignDone func(ok bool, d time.Duration)
	// ReadDone runs once when a read finishes the pipeline: the
	// candidates considered, how many the filter rejected, how many were
	// accepted into (reached) the alignment step, whether the read
	// mapped, and the end-to-end duration.
	ReadDone func(candidates, filtered, accepted int, mapped bool, d time.Duration)
}

// internalTrace lowers a MapTrace onto the pipeline's hook points. The
// per-stage hooks pass through untouched; ReadDone is unpacked from the
// internal Mapping once per read.
func (t *MapTrace) internalTrace() *mapper.Trace {
	if t == nil {
		return nil
	}
	it := &mapper.Trace{
		SeedingDone: t.SeedingDone,
		FilterDone:  t.FilterDone,
		AlignDone:   t.AlignDone,
	}
	if rd := t.ReadDone; rd != nil {
		it.ReadDone = func(mp *mapper.Mapping, d time.Duration) {
			rd(mp.Candidates, mp.Filtered, mp.Aligned, mp.Mapped, d)
		}
	}
	return it
}

// AlignTrace is a set of hooks run around every alignment an Engine
// serves (Align, AlignGlobal, EditDistance, AlignBatch, AlignStream).
// Attach one with WithAlignTrace or Engine.SetAlignTrace.
//
// Any hook may be nil. Hooks run synchronously on the aligning goroutine
// and must be concurrency-safe; they must not block — the engine's whole
// workspace pool is live while they run.
type AlignTrace struct {
	// WorkspaceAcquired runs once an alignment has obtained a pooled
	// workspace, with the time it spent waiting for one. Waits near zero
	// mean the pool has headroom; waits approaching request latency mean
	// the engine is saturated and alignments are queueing (the software
	// analogue of all GenASM units in a vault being busy).
	WorkspaceAcquired func(wait time.Duration)
	// Done runs when the alignment finishes, with the input sizes, the
	// time spent aligning (excluding the workspace wait) and the
	// alignment error, if any.
	Done func(textLen, queryLen int, d time.Duration, err error)
}

// SetAlignTrace attaches tr to every subsequent alignment; nil detaches.
// It is safe to call concurrently with alignments (in-flight alignments
// keep the trace they started with), though the usual pattern is to
// attach once right after NewEngine — or at construction, with
// WithAlignTrace.
func (e *Engine) SetAlignTrace(tr *AlignTrace) { e.trace.Store(tr) }
