package genasm

import (
	"fmt"
	"time"

	"genasm/internal/faults"
	"genasm/internal/filter"
	"genasm/internal/index"
	"genasm/internal/indexfile"
	"genasm/internal/mapper"
)

// IndexBackend selects the candidate-generation backend of a RefIndex.
type IndexBackend string

const (
	// IndexHash indexes every k-mer of the reference — fastest lookups,
	// largest index.
	IndexHash IndexBackend = "hash"
	// IndexMinimizer samples window minimizers (Minimap2's scheme),
	// shrinking the index roughly 2/(w+1)-fold.
	IndexMinimizer IndexBackend = "minimizer"
	// IndexSuffixArray builds a suffix array (SA-IS) with binary-search
	// seeding — compact ordered structure, O(log n) lookups.
	IndexSuffixArray IndexBackend = "suffixarray"
)

// SeedParams is the one shared home of the seeding knobs: both reference
// indexing (RefIndexConfig) and mapping (MapperConfig) embed it, so the two
// surfaces cannot drift apart. The zero value selects the defaults.
type SeedParams struct {
	// SeedK is the seed length (default 15, max 31 — longer seeds no
	// longer fit the 2-bit packed uint64 keys and are rejected with a
	// typed KRangeError).
	SeedK int
	// MinimizerW samples the index with window minimizers when > 0
	// (Minimap2's scheme), shrinking the index roughly 2/(w+1)-fold. Only
	// meaningful for minimizer-backed indexes (default 10 there).
	MinimizerW int
}

// RefIndexConfig parameterizes BuildRefIndex. The zero value builds a hash
// index with the default seed length.
type RefIndexConfig struct {
	// Backend selects the index structure. Empty defaults to IndexHash, or
	// IndexMinimizer when MinimizerW > 0.
	Backend IndexBackend
	// SeedParams are the shared seeding knobs (seed length, minimizer
	// window).
	SeedParams
	// RefName names the reference in SAM output and is stored in written
	// index files (default "ref").
	RefName string
}

// RefIndex is a reference seed index that can be persisted to disk and
// loaded back without rebuilding — the mapper equivalent of Minimap2's
// .mmi files. Build one offline with Engine.BuildRefIndex (then WriteFile),
// or load a prebuilt file with LoadRefIndex; either way,
// Engine.NewMapperFromIndex turns it into a ready Mapper with no indexing
// work at all.
//
// A RefIndex is safe for concurrent lookups. A loaded RefIndex may be
// backed by a file mapping: keep it open for as long as any Mapper built
// from it is in use, and Close it when done.
type RefIndex struct {
	idx     index.SeedIndex
	refName string
	source  string // "built", "mmap" or "memory"
	digest  uint64
	bytes   int64 // on-disk size when loaded, 0 when built
	load    time.Duration
	closer  func() error
}

// BuildRefIndex encodes the reference (letters) and builds a seed index
// over it. The engine must use the DNA alphabet.
func (e *Engine) BuildRefIndex(ref []byte, cfg RefIndexConfig) (*RefIndex, error) {
	if e.cfg.Alphabet != DNA {
		return nil, fmt.Errorf("genasm: reference indexing requires the DNA alphabet, engine uses %s", e.cfg.Alphabet)
	}
	encRef, err := e.encode("reference", ref)
	if err != nil {
		return nil, err
	}
	k := cfg.SeedK
	if k == 0 {
		k = 15
	}
	backend := cfg.Backend
	if backend == "" {
		backend = IndexHash
		if cfg.MinimizerW > 0 {
			backend = IndexMinimizer
		}
	}
	var idx index.SeedIndex
	switch backend {
	case IndexHash:
		if cfg.MinimizerW > 0 {
			return nil, fmt.Errorf("genasm: MinimizerW is set but Backend is %q", backend)
		}
		idx, err = index.Build(encRef, k)
	case IndexMinimizer:
		w := cfg.MinimizerW
		if w == 0 {
			w = 10
		}
		idx, err = index.BuildMinimizer(encRef, k, w)
	case IndexSuffixArray:
		if cfg.MinimizerW > 0 {
			return nil, fmt.Errorf("genasm: MinimizerW is set but Backend is %q", backend)
		}
		idx, err = index.BuildSuffixArray(encRef, k)
	default:
		return nil, fmt.Errorf("genasm: unknown index backend %q", backend)
	}
	if err != nil {
		return nil, err
	}
	refName := cfg.RefName
	if refName == "" {
		refName = "ref"
	}
	return &RefIndex{
		idx:     idx,
		refName: refName,
		source:  "built",
		digest:  indexfile.RefDigest(encRef),
	}, nil
}

// LoadRefIndex loads a prebuilt index file (see RefIndex.WriteFile and the
// `genasm index build` command), mmapping it when the platform supports it
// so load time is independent of index size. The file's structure, whole-
// file checksum and reference digest are verified; a damaged or
// incompatible file is an error, never a panic.
func LoadRefIndex(path string) (*RefIndex, error) {
	start := time.Now()
	if err := faults.Fire(faults.SiteIndexMmap); err != nil {
		return nil, err
	}
	f, err := indexfile.Load(path)
	if err != nil {
		return nil, err
	}
	source := "memory"
	if f.Info.Mapped {
		source = "mmap"
	}
	return &RefIndex{
		idx:     f.Index,
		refName: f.Info.RefName,
		source:  source,
		digest:  f.Info.RefDigest,
		bytes:   f.Info.FileBytes,
		load:    time.Since(start),
		closer:  f.Close,
	}, nil
}

// WriteFile persists the index in the versioned on-disk format, ready for
// LoadRefIndex.
func (ri *RefIndex) WriteFile(path string) error {
	return indexfile.WriteFile(path, ri.idx, ri.refName)
}

// RefName returns the reference name recorded in the index.
func (ri *RefIndex) RefName() string { return ri.refName }

// Close releases the underlying file mapping, if any. The RefIndex and
// every Mapper built from it must not be used afterwards. Safe to call on
// a built (non-loaded) index and safe to call twice.
func (ri *RefIndex) Close() error {
	c := ri.closer
	ri.closer = nil
	if c != nil {
		return c()
	}
	return nil
}

// IndexStats describes a reference index.
type IndexStats struct {
	// Backend is the index kind: "hash", "minimizer" or "suffixarray".
	Backend string
	// K is the seed length; MinimizerW the sampling window (0 = none).
	K, MinimizerW int
	// RefLen is the indexed reference length in bases.
	RefLen int
	// Seeds is the number of indexed seed positions; Buckets the number of
	// distinct seed keys (0 where the backend has no bucket structure).
	Seeds, Buckets int
	// Bytes approximates the in-memory footprint of the index structures.
	Bytes int64
	// RefDigest identifies the reference independent of backend (two
	// indexes over the same reference share it).
	RefDigest uint64
	// Source reports where the index came from: "built" in this process,
	// "mmap" from a mapped file, or "memory" from a file read into RAM.
	Source string
	// FileBytes is the on-disk size when loaded from a file, 0 otherwise.
	FileBytes int64
	// LoadTime is the wall time of LoadRefIndex, 0 for built indexes.
	LoadTime time.Duration
}

// Stats describes the index: backend, parameters, footprint and origin.
func (ri *RefIndex) Stats() IndexStats {
	st := ri.idx.Stats()
	return IndexStats{
		Backend:    st.Backend,
		K:          st.K,
		MinimizerW: st.MinimizerW,
		RefLen:     st.RefLen,
		Seeds:      st.Seeds,
		Buckets:    st.Buckets,
		Bytes:      st.Bytes,
		RefDigest:  ri.digest,
		Source:     ri.source,
		FileBytes:  ri.bytes,
		LoadTime:   ri.load,
	}
}

// NewMapperFromIndex builds a Mapper over a prebuilt RefIndex, skipping
// the indexing step — the fast-start path for servers and repeated runs.
// cfg.SeedK and cfg.MinimizerW are taken from the index and must be left
// zero; cfg.RefName overrides the name recorded in the index. The RefIndex
// must stay open (not Closed) for the Mapper's lifetime.
func (e *Engine) NewMapperFromIndex(ri *RefIndex, cfg MapperConfig) (*Mapper, error) {
	if e.cfg.Alphabet != DNA {
		return nil, fmt.Errorf("genasm: read mapping requires the DNA alphabet, engine uses %s", e.cfg.Alphabet)
	}
	if cfg.SeedK != 0 || cfg.MinimizerW != 0 {
		return nil, fmt.Errorf("genasm: SeedK/MinimizerW are fixed by the prebuilt index; leave them zero")
	}
	alignPool, err := e.mapperAlignPool()
	if err != nil {
		return nil, err
	}
	var flt filter.Filter
	if cfg.Prefilter {
		flt = filter.GenASMDC{}
	}
	m, err := mapper.NewFromIndex(ri.idx, mapper.Config{
		MaxCandidates: cfg.MaxCandidates,
		ErrorRate:     cfg.ErrorRate,
		Filter:        flt,
		Aligner:       pooledRegionAligner{p: alignPool},
		Trace:         cfg.Trace.internalTrace(),
	})
	if err != nil {
		return nil, err
	}
	refName := cfg.RefName
	if refName == "" {
		refName = ri.refName
	}
	if refName == "" {
		refName = "ref"
	}
	return &Mapper{e: e, m: m, refName: refName, refLen: ri.Stats().RefLen, idxStats: ri.Stats()}, nil
}

// IndexStats describes the Mapper's seed index: backend, parameters,
// footprint and origin ("built" unless the Mapper came from
// NewMapperFromIndex over a loaded file).
func (m *Mapper) IndexStats() IndexStats { return m.idxStats }
